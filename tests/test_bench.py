"""The benchmark harness: schema, determinism, and the regression gate."""

import copy
import json

import pytest

from repro.bench import (
    EXIT_REGRESSION,
    GATED_METRICS,
    SCHEMA,
    WORKLOADS,
    compare,
    load_bench,
    run_bench,
    validate,
    write_bench,
)
from repro.cli import main


@pytest.fixture(scope="module")
def quick_doc():
    return run_bench(tag="test", quick=True, seed=0)


class TestRunBench:
    def test_schema_valid(self, quick_doc):
        assert validate(quick_doc) == []
        assert quick_doc["schema"] == SCHEMA
        assert quick_doc["quick"] is True

    def test_quick_is_strict_subset_of_full(self):
        quick_keys = {key for key, spec in WORKLOADS if spec["quick"]}
        all_keys = {key for key, _spec in WORKLOADS}
        assert quick_keys and quick_keys < all_keys

    def test_quick_doc_covers_the_quick_rows(self, quick_doc):
        assert set(quick_doc["workloads"]) == {
            key for key, spec in WORKLOADS if spec["quick"]
        }

    def test_records_are_populated(self, quick_doc):
        for record in quick_doc["workloads"].values():
            assert record["ticks"] > 0
            assert record["total_ops"] > 0
            assert record["queries"] > 0
            assert record["budget"] > 0
            assert 0 < record["peak_buffered_contexts"] <= record["budget"]
            assert record["stage_profile"], "per-stage profile missing"
            assert record["wall_time_seconds"] >= 0

    def test_totals_sum_the_workloads(self, quick_doc):
        assert quick_doc["totals"]["ticks"] == sum(
            w["ticks"] for w in quick_doc["workloads"].values()
        )

    def test_deterministic_under_fixed_seed(self, quick_doc):
        again = run_bench(tag="other-tag", quick=True, seed=0)
        for key, record in quick_doc["workloads"].items():
            for metric in GATED_METRICS + ("rows", "work_messages",
                                           "peak_buffered_contexts"):
                assert again["workloads"][key][metric] == record[metric]


class TestValidate:
    def test_rejects_non_object(self):
        assert validate([]) != []

    def test_rejects_missing_keys(self, quick_doc):
        broken = copy.deepcopy(quick_doc)
        del broken["totals"]
        assert any("totals" in p for p in validate(broken))

    def test_rejects_wrong_schema(self, quick_doc):
        broken = copy.deepcopy(quick_doc)
        broken["schema"] = "something-else/9"
        assert validate(broken) != []

    def test_rejects_non_numeric_metric(self, quick_doc):
        broken = copy.deepcopy(quick_doc)
        key = next(iter(broken["workloads"]))
        broken["workloads"][key]["ticks"] = "fast"
        assert any("ticks" in p for p in validate(broken))

    def test_load_rejects_invalid_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": SCHEMA}))
        with pytest.raises(ValueError):
            load_bench(str(path))


class TestCompare:
    def test_self_compare_is_clean(self, quick_doc):
        regressions, lines = compare(quick_doc, quick_doc, threshold=25.0)
        assert regressions == []
        assert lines

    def test_injected_slowdown_detected(self, quick_doc):
        slowed = copy.deepcopy(quick_doc)
        key = next(iter(slowed["workloads"]))
        slowed["workloads"][key]["ticks"] = int(
            quick_doc["workloads"][key]["ticks"] * 2
        )
        regressions, _lines = compare(slowed, quick_doc, threshold=25.0)
        assert [(k, metric) for k, metric, _pct in regressions] \
            == [(key, "ticks")]

    def test_threshold_is_respected(self, quick_doc):
        slowed = copy.deepcopy(quick_doc)
        key = next(iter(slowed["workloads"]))
        slowed["workloads"][key]["ticks"] = int(
            quick_doc["workloads"][key]["ticks"] * 1.2
        )
        clean, _ = compare(slowed, quick_doc, threshold=25.0)
        caught, _ = compare(slowed, quick_doc, threshold=10.0)
        assert clean == []
        assert caught

    def test_wall_time_never_gates(self, quick_doc):
        slowed = copy.deepcopy(quick_doc)
        for record in slowed["workloads"].values():
            record["wall_time_seconds"] *= 100
        regressions, _ = compare(slowed, quick_doc, threshold=25.0)
        assert regressions == []

    def test_quick_run_compares_against_full_baseline(self, quick_doc):
        # A full doc has extra workloads; only the common quick rows gate.
        full = copy.deepcopy(quick_doc)
        full["workloads"]["extra_only_in_full"] = copy.deepcopy(
            next(iter(quick_doc["workloads"].values()))
        )
        regressions, lines = compare(quick_doc, full, threshold=25.0)
        assert regressions == []
        assert not any("extra_only_in_full" in line for line in lines)

    def test_disjoint_docs_flagged(self, quick_doc):
        other = copy.deepcopy(quick_doc)
        other["workloads"] = {
            "different": next(iter(quick_doc["workloads"].values()))
        }
        regressions, _ = compare(quick_doc, other)
        assert regressions


class TestBenchCli:
    def test_round_trip_and_compare_ok(self, tmp_path, capsys, quick_doc):
        baseline = tmp_path / "BENCH_base.json"
        write_bench(quick_doc, str(baseline))
        out_path = tmp_path / "BENCH_new.json"
        code = main([
            "bench", "--quick", "--tag", "new", "--out", str(out_path),
            "--compare", str(baseline), "--threshold", "25",
        ])
        assert code == 0
        assert validate(json.loads(out_path.read_text())) == []
        out = capsys.readouterr().out
        assert "OK: no gated metric regressed" in out

    def test_regression_exits_nonzero(self, tmp_path, capsys, quick_doc):
        # A baseline that claims to have been much faster forces the
        # freshly measured run to look like a regression.
        faster = copy.deepcopy(quick_doc)
        for record in faster["workloads"].values():
            record["ticks"] = max(1, record["ticks"] // 2)
            record["total_ops"] = max(1, record["total_ops"] // 2)
        baseline = tmp_path / "BENCH_fast.json"
        write_bench(faster, str(baseline))
        code = main([
            "bench", "--quick", "--tag", "x",
            "--out", str(tmp_path / "BENCH_x.json"),
            "--compare", str(baseline), "--threshold", "25",
        ])
        assert code == EXIT_REGRESSION
        assert code != 0
        out = capsys.readouterr().out
        assert "REGRESSION" in out

    def test_checked_in_seed_baseline_matches(self, tmp_path, capsys):
        """BENCH_seed.json stays truthful: a quick run at seed 0 must
        gate cleanly against the repository's checked-in baseline."""
        import os

        seed_path = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "BENCH_seed.json",
        )
        doc = load_bench(seed_path)
        assert doc["tag"] == "seed"
        code = main([
            "bench", "--quick", "--tag", "ci",
            "--out", str(tmp_path / "BENCH_ci.json"),
            "--compare", seed_path, "--threshold", "25",
        ])
        assert code == 0


class TestPlannerPillar:
    def test_pillar_in_quick_matrix(self):
        specs = dict(WORKLOADS)
        planner_keys = [
            key for key, spec in specs.items()
            if spec.get("kind") == "planner"
        ]
        assert planner_keys, "planner pillar missing from the matrix"
        assert all(specs[key]["quick"] for key in planner_keys)

    def test_pillar_record_beats_naive_with_identical_rows(self, quick_doc):
        pillars = {
            key: record
            for key, record in quick_doc["workloads"].items()
            if "planner_rows_match" in record
        }
        assert pillars
        for record in pillars.values():
            assert record["planner_rows_match"] is True
            assert record["ticks"] < record["naive_ticks"]
            assert record["total_ops"] < record["naive_total_ops"]
            assert record["work_messages"] < record["naive_work_messages"]

    def test_pillar_record_passes_schema(self, quick_doc):
        # The extra naive_* fields must not break the shared schema.
        assert validate(quick_doc) == []
