"""Tests for SELECT DISTINCT and partial aggregation merging."""

import pytest

from repro import ClusterConfig, run_query
from repro.graph import GraphBuilder, uniform_random_graph
from repro.runtime.aggregation import GroupAccumulator, RowCollector


def diamond_graph():
    """a -> f1 -> b and a -> f2 -> b: two paths, one distinct pair."""
    builder = GraphBuilder()
    a = builder.add_vertex(name="a")
    f1 = builder.add_vertex(name="f1")
    f2 = builder.add_vertex(name="f2")
    b = builder.add_vertex(name="b")
    builder.add_edge(a, f1)
    builder.add_edge(a, f2)
    builder.add_edge(f1, b)
    builder.add_edge(f2, b)
    return builder.build()


class TestSelectDistinct:
    def test_duplicates_removed(self):
        graph = diamond_graph()
        plain = run_query(
            graph,
            "SELECT a, b WHERE (a)-[]->(f)-[]->(b)",
            ClusterConfig(num_machines=2),
        )
        distinct = run_query(
            graph,
            "SELECT DISTINCT a, b WHERE (a)-[]->(f)-[]->(b)",
            ClusterConfig(num_machines=2),
        )
        assert len(plain.rows) == 2
        assert distinct.rows == [(0, 3)]

    def test_distinct_respects_projection(self, random_graph):
        result = run_query(
            random_graph,
            "SELECT DISTINCT a.type WHERE (a)-[]->(b)",
            ClusterConfig(num_machines=3),
        )
        values = [row[0] for row in result.rows]
        assert len(values) == len(set(values))

    def test_distinct_with_order_and_limit(self, random_graph):
        result = run_query(
            random_graph,
            "SELECT DISTINCT a.type WHERE (a)-[]->(b) "
            "ORDER BY a.type LIMIT 2",
            ClusterConfig(num_machines=3),
        )
        assert result.rows == [(0,), (1,)]

    @pytest.mark.parametrize("machines", [1, 2, 5])
    def test_distinct_independent_of_cluster(self, random_graph, machines):
        query = "SELECT DISTINCT b WHERE (a)-[]->(b), a.type = 1"
        result = run_query(
            random_graph, query, ClusterConfig(num_machines=machines)
        )
        reference = run_query(
            random_graph, query, ClusterConfig(num_machines=1)
        )
        assert sorted(result.rows) == sorted(reference.rows)


class TestPartialAggregation:
    def test_machines_use_group_accumulators(self, random_graph):
        from repro.plan import plan_query
        from repro.runtime.aggregation import make_collector

        plan = plan_query(
            "SELECT COUNT(*) WHERE (a)-[]->(b)", random_graph
        )
        collector = make_collector(plan.output, ["a", "b"], [])
        assert isinstance(collector, GroupAccumulator)

        plain = plan_query("SELECT a WHERE (a)-[]->(b)", random_graph)
        assert isinstance(make_collector(plain.output, ["a", "b"], []),
                          RowCollector)

    def test_merge_equals_single_machine(self, random_graph):
        query = (
            "SELECT a.type, COUNT(*), SUM(b.value), MIN(b.value), "
            "MAX(b.value), AVG(b.value) WHERE (a)-[]->(b) "
            "GROUP BY a.type ORDER BY a.type"
        )
        merged = run_query(
            random_graph, query, ClusterConfig(num_machines=5)
        )
        single = run_query(
            random_graph, query, ClusterConfig(num_machines=1)
        )
        assert merged.rows == single.rows

    def test_distinct_aggregate_across_machines(self):
        # The same b reached from machines all over the cluster must be
        # counted once by COUNT(DISTINCT b).
        graph = uniform_random_graph(60, 600, seed=44)
        query = "SELECT COUNT(DISTINCT b) WHERE (a)-[]->(b)"
        merged = run_query(graph, query, ClusterConfig(num_machines=6))
        distinct_targets = {
            graph.edge_destination(e) for e in range(graph.num_edges)
        }
        assert merged.rows == [(len(distinct_targets),)]

    def test_distinct_over_grouped_rows(self, random_graph):
        # SELECT DISTINCT COUNT(*) ... GROUP BY dedups equal group counts.
        plain = run_query(
            random_graph,
            "SELECT COUNT(*) WHERE (a)-[]->(b) GROUP BY a",
            ClusterConfig(num_machines=2),
        )
        distinct = run_query(
            random_graph,
            "SELECT DISTINCT COUNT(*) WHERE (a)-[]->(b) GROUP BY a",
            ClusterConfig(num_machines=2),
        )
        assert len(set(plain.rows)) == len(distinct.rows)
        assert len(distinct.rows) < len(plain.rows)

    def test_group_keys_spanning_machines(self, random_graph):
        query = (
            "SELECT b.type, COUNT(*) WHERE (a)-[]->(b) "
            "GROUP BY b.type ORDER BY b.type"
        )
        result = run_query(
            random_graph, query, ClusterConfig(num_machines=4)
        )
        total = sum(row[1] for row in result.rows)
        assert total == random_graph.num_edges
