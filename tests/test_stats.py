"""The statistics subsystem: sketches, collection, serialization."""

import json

from repro.graph import GraphBuilder
from repro.graph.loaders import graph_from_dict, graph_to_dict, load_json, save_json
from repro.graph.types import Direction
from repro.stats import (
    DistinctSketch,
    GraphStatistics,
    TopValuesSketch,
    collect_statistics,
)


def music_graph():
    """2 bands, 4 songs (3 by band0), 5 persons; skewed fan_of."""
    builder = GraphBuilder()
    b0 = builder.add_vertex(label="band", name="b0")
    b1 = builder.add_vertex(label="band", name="b1")
    songs = [
        builder.add_vertex(label="song", year=2000 + i) for i in range(4)
    ]
    persons = [
        builder.add_vertex(label="person", name="p%d" % i, age=20 + i)
        for i in range(5)
    ]
    for song in songs[:3]:
        builder.add_edge(b0, song, label="recorded")
    builder.add_edge(b1, songs[3], label="recorded")
    for person in persons:
        builder.add_edge(person, b0, label="fan_of")
    builder.add_edge(persons[0], b1, label="fan_of")
    return builder.build()


class TestTopValuesSketch:
    def test_exact_below_capacity(self):
        sketch = TopValuesSketch(capacity=4)
        for value in "aabbbc":
            sketch.add(value)
        assert sketch.count("b") == 3
        assert sketch.guaranteed_count("b") == 3
        assert sketch.guaranteed_total == sketch.total == 6

    def test_eviction_keeps_error_bounds(self):
        sketch = TopValuesSketch(capacity=2)
        for value in ["hot"] * 10 + ["a", "b", "c"]:
            sketch.add(value)
        # The heavy hitter survives with a usable lower bound.
        assert sketch.guaranteed_count("hot") >= 10 - 3
        # Untracked values report 0 guaranteed, not a made-up count.
        tracked = {value for value, _count, _err in sketch.top()}
        for value in {"a", "b", "c"} - tracked:
            assert sketch.guaranteed_count(value) == 0
        # The guaranteed mass never exceeds the stream length.
        assert sketch.guaranteed_total <= sketch.total

    def test_top_order_independent_of_insertion(self):
        left, right = TopValuesSketch(capacity=8), TopValuesSketch(capacity=8)
        values = ["x"] * 3 + ["y"] * 3 + ["z"]
        for value in values:
            left.add(value)
        for value in reversed(values):
            right.add(value)
        assert left.top() == right.top()

    def test_round_trip(self):
        sketch = TopValuesSketch(capacity=3)
        for value in "aabbbcccc":
            sketch.add(value)
        clone = TopValuesSketch.from_dict(
            json.loads(json.dumps(sketch.to_dict()))
        )
        assert clone.top() == sketch.top()
        assert clone.total == sketch.total


class TestDistinctSketch:
    def test_exact_small_stream(self):
        sketch = DistinctSketch(capacity=64)
        for value in range(40):
            sketch.add(value)
            sketch.add(value)  # duplicates don't count
        assert sketch.estimate() == 40

    def test_estimate_large_stream(self):
        sketch = DistinctSketch(capacity=128)
        for value in range(5000):
            sketch.add(value)
        estimate = sketch.estimate()
        assert 3000 < estimate < 8000  # KMV with k=128 is ~±9% at 1σ

    def test_round_trip(self):
        sketch = DistinctSketch(capacity=16)
        for value in range(100):
            sketch.add(value)
        clone = DistinctSketch.from_dict(
            json.loads(json.dumps(sketch.to_dict()))
        )
        assert clone.estimate() == sketch.estimate()


class TestCollect:
    def test_label_counts_and_fanout(self):
        stats = collect_statistics(music_graph())
        assert stats.vertex_label_counts == {"band": 2, "song": 4,
                                             "person": 5}
        assert stats.edge_label_counts == {"recorded": 4, "fan_of": 6}
        assert stats.edge_triples[("band", "recorded", "song")] == 4
        assert stats.expected_neighbors("band", "recorded", "out") == 2.0
        # In-direction: fans per band, songs' recording band.
        assert stats.expected_neighbors("band", "fan_of", "in") == 3.0
        assert stats.expected_neighbors("song", "recorded", "in") == 1.0

    def test_degree_histograms_both_sides(self):
        stats = collect_statistics(music_graph())
        assert stats.out_degrees["person"].max == 2  # p0 likes two bands
        assert stats.in_degrees["band"].max == 5     # b0's fans
        assert stats.in_degrees["person"].max == 0
        assert stats.out_degrees_all.count == stats.num_vertices

    def test_neighbor_label_fraction_and_edge_probability(self):
        stats = collect_statistics(music_graph())
        assert stats.neighbor_label_fraction(
            "band", "recorded", "out", "song") == 1.0
        assert stats.neighbor_label_fraction(
            "song", "recorded", "in", "band") == 1.0
        # 4 recorded edges over 2 bands x 4 songs = 0.5 expected edges.
        assert stats.edge_probability("band", "recorded", "song") == 0.5

    def test_property_selectivities(self):
        stats = collect_statistics(music_graph())
        name = stats.vertex_prop_stats("name")
        assert name is not None
        # 7 named vertices of 11 total; each name unique among them.
        assert 0.0 < name.eq_selectivity("p0") < 0.2
        year = stats.vertex_prop_stats("year")
        assert year.range_selectivity("<", 2002) > 0.0


class TestGraphIntegration:
    def test_statistics_cached_and_refreshable(self):
        graph = music_graph()
        first = graph.statistics()
        assert graph.statistics() is first
        assert graph.statistics(refresh=True) is not first

    def test_build_time_collection(self):
        builder = GraphBuilder()
        builder.add_vertex(label="v")
        graph = builder.build(collect_stats=True)
        assert graph.statistics().vertex_label_counts == {"v": 1}

    def test_in_degree_stats_counterpart(self):
        graph = music_graph()
        out_min, out_max, out_mean = graph.degree_stats()
        in_min, in_max, in_mean = graph.degree_stats(direction=Direction.IN)
        assert (out_min, in_min) == (0, 0)
        assert in_max == 5  # b0's fan_of in-degree
        assert out_max == 3  # b0 recorded three songs
        assert out_mean == in_mean  # same edge total on both sides

    def test_json_round_trip_preserves_stats(self, tmp_path):
        graph = music_graph()
        original = graph.statistics()
        path = str(tmp_path / "g.json")
        save_json(graph, path, include_stats=True)
        loaded = load_json(path)
        # Attached on load: no recollection pass needed or triggered.
        assert loaded.statistics().to_dict() == original.to_dict()

    def test_dict_round_trip_without_stats_stays_lean(self):
        graph = music_graph()
        doc = graph_to_dict(graph)
        assert "statistics" not in doc
        assert graph_from_dict(doc).num_vertices == graph.num_vertices

    def test_statistics_document_round_trip(self):
        stats = collect_statistics(music_graph())
        clone = GraphStatistics.from_json(stats.to_json())
        assert clone.to_dict() == stats.to_dict()

    def test_table_renders(self):
        text = collect_statistics(music_graph()).table(top=2)
        assert "vertex label" in text
        assert "band" in text and "fan_of" in text
