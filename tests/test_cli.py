"""Tests for the command-line interface."""

import pytest

from repro.cli import EXIT_ABORTED, build_parser, load_graph, main


class TestParser:
    def test_query_args(self):
        args = build_parser().parse_args(
            ["query", "--random", "100x400", "--machines", "2",
             "SELECT a WHERE (a)"]
        )
        assert args.command == "query"
        assert args.machines == 2
        assert args.pgql == "SELECT a WHERE (a)"

    def test_analyze_args(self):
        args = build_parser().parse_args(
            ["analyze", "--bsbm", "100", "pagerank", "--iterations", "5"]
        )
        assert args.command == "analyze"
        assert args.algorithm == "pagerank"
        assert args.iterations == 5

    def test_graph_source_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["query", "SELECT a WHERE (a)"])

    def test_chaos_args(self):
        args = build_parser().parse_args(
            ["chaos", "--random", "100x400", "--profile", "drop",
             "--drop", "0.1", "--stall", "1@5+10", "--verify",
             "SELECT a WHERE (a)"]
        )
        assert args.command == "chaos"
        assert args.profile == "drop"
        assert args.drop == 0.1
        assert args.stall == ["1@5+10"]
        assert args.verify

    def test_unknown_profile_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["chaos", "--random", "100x400", "--profile", "tsunami",
                 "SELECT a WHERE (a)"]
            )

    def test_timeout_arg(self):
        args = build_parser().parse_args(
            ["query", "--random", "100x400", "--timeout", "50",
             "SELECT a WHERE (a)"]
        )
        assert args.timeout == 50


class TestLoadGraph:
    def test_random(self):
        args = build_parser().parse_args(
            ["query", "--random", "50x200", "SELECT a WHERE (a)"]
        )
        graph = load_graph(args)
        assert graph.num_vertices == 50
        assert graph.num_edges == 200

    def test_random_bad_format(self):
        args = build_parser().parse_args(
            ["query", "--random", "50:200", "SELECT a WHERE (a)"]
        )
        with pytest.raises(SystemExit):
            load_graph(args)

    def test_bsbm(self):
        args = build_parser().parse_args(
            ["query", "--bsbm", "50", "SELECT a WHERE (a)"]
        )
        graph = load_graph(args)
        assert graph.num_vertices > 50

    def test_json_file(self, tmp_path, social_graph):
        from repro.graph import save_json

        path = tmp_path / "g.json"
        save_json(social_graph, path)
        args = build_parser().parse_args(
            ["query", "--graph", str(path), "SELECT a WHERE (a)"]
        )
        graph = load_graph(args)
        assert graph.num_vertices == social_graph.num_vertices

    def test_edge_list_file(self, tmp_path, social_graph):
        from repro.graph import save_edge_list

        path = tmp_path / "g.el"
        save_edge_list(social_graph, path)
        args = build_parser().parse_args(
            ["query", "--graph", str(path), "SELECT a WHERE (a)"]
        )
        graph = load_graph(args)
        assert graph.num_edges == social_graph.num_edges


class TestEndToEnd:
    def test_query_command(self, capsys):
        code = main(
            ["query", "--random", "60x240", "--machines", "2",
             "SELECT a, b WHERE (a)-[]->(b), a.value > 9000"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "rows" in out
        assert "ticks=" in out

    def test_explain_command(self, capsys):
        code = main(
            ["query", "--random", "60x240", "--explain",
             "SELECT a, b WHERE (a)-[]->(b)"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Stage 0" in out
        assert "output" in out

    def test_query_with_options(self, capsys):
        code = main(
            ["query", "--random", "60x240", "--schedule",
             "--semantics", "isomorphism",
             "SELECT a, b WHERE (a)-[]->(b WITH type = 1)"]
        )
        assert code == 0

    @pytest.mark.parametrize(
        "algorithm", ["pagerank", "wcc", "sssp", "triangles", "degree"]
    )
    def test_analyze_command(self, capsys, algorithm):
        code = main(
            ["analyze", "--random", "60x240", "--machines", "2", algorithm,
             "--iterations", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "supersteps:" in out


class TestChaosCommand:
    QUERY = "SELECT a, b WHERE (a)-[]->(b), a.value > b.value"

    def test_chaos_verify_ok(self, capsys):
        code = main(
            ["chaos", "--random", "100x400", "--machines", "4",
             "--seed", "7", "--profile", "soak", "--verify", self.QUERY]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "chaos" in out
        assert "retransmits=" in out
        assert "verify   : OK" in out

    def test_chaos_crash_aborts(self, capsys):
        code = main(
            ["chaos", "--random", "100x400", "--machines", "4",
             "--crash", "2@10", self.QUERY]
        )
        assert code == EXIT_ABORTED
        out = capsys.readouterr().out
        assert "query aborted: machine 2 crashed" in out
        assert "partial" in out

    def test_bad_stall_spec(self):
        with pytest.raises(SystemExit):
            main(["chaos", "--random", "100x400", "--stall", "nope",
                  self.QUERY])

    def test_bad_crash_spec(self):
        with pytest.raises(SystemExit):
            main(["chaos", "--random", "100x400", "--crash", "nope",
                  self.QUERY])


class TestTimeout:
    def test_timed_out_query_exits_nonzero_with_partial_metrics(
            self, capsys):
        code = main(
            ["query", "--random", "200x800", "--machines", "4",
             "--timeout", "2",
             "SELECT a, b WHERE (a)-[]->(b), a.value > b.value"]
        )
        assert code == EXIT_ABORTED
        assert code != 0
        out = capsys.readouterr().out
        assert "query aborted: deadline of 2 ticks exceeded" in out
        assert "partial  :" in out
        assert "ticks=" in out

    def test_generous_timeout_completes(self, capsys):
        code = main(
            ["query", "--random", "60x240", "--machines", "2",
             "--timeout", "100000",
             "SELECT a, b WHERE (a)-[]->(b), a.value > 9000"]
        )
        assert code == 0
        assert "rows" in capsys.readouterr().out


class TestMonitorCommand:
    QUERY = "SELECT a, b WHERE (a)-[]->(b), a.value > b.value"

    def test_monitor_args(self):
        args = build_parser().parse_args(
            ["monitor", "--random", "100x400", "--interval", "2",
             "--snapshots", "--series-out", "s.jsonl", self.QUERY]
        )
        assert args.command == "monitor"
        assert args.interval == 2
        assert args.snapshots
        assert args.series_out == "s.jsonl"

    def test_monitor_end_to_end(self, capsys, tmp_path):
        prom = tmp_path / "metrics.prom"
        series = tmp_path / "series.csv"
        code = main(
            ["monitor", "--random", "100x400", "--machines", "2",
             "--snapshots", "--prom-out", str(prom),
             "--series-out", str(series), self.QUERY]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "repro monitor" in out
        assert "stage wavefront" in out
        assert "telemetry:" in out
        assert "# TYPE repro_ops_total counter" in prom.read_text()
        header = series.read_text().splitlines()[0]
        assert header.startswith("tick,machine,")

    def test_monitor_series_jsonl(self, tmp_path, capsys):
        from repro.obs.exporters import parse_series_jsonl

        series = tmp_path / "series.jsonl"
        code = main(
            ["monitor", "--random", "60x240", "--machines", "2",
             "--snapshots", "--series-out", str(series), self.QUERY]
        )
        assert code == 0
        meta, rows = parse_series_jsonl(series.read_text())
        assert meta["num_machines"] == 2
        assert rows

    def test_monitor_abort_prints_flow_state(self, capsys):
        code = main(
            ["monitor", "--random", "200x800", "--machines", "4",
             "--snapshots", "--timeout", "3", self.QUERY]
        )
        assert code == EXIT_ABORTED
        out = capsys.readouterr().out
        assert "query aborted: deadline of 3 ticks exceeded" in out
        assert "flow     :" in out
        assert "machine 0:" in out

    def test_monitor_union_query(self, capsys):
        code = main(
            ["monitor", "--random", "60x240", "--machines", "2",
             "--snapshots", "SELECT a, b WHERE (a)-/{1,2}/->(b)"]
        )
        assert code == 0
        assert "telemetry:" in capsys.readouterr().out


class TestBenchArgs:
    def test_bench_args(self):
        args = build_parser().parse_args(
            ["bench", "--quick", "--tag", "ci", "--compare",
             "BENCH_seed.json", "--threshold", "25"]
        )
        assert args.command == "bench"
        assert args.quick
        assert args.tag == "ci"
        assert args.compare == "BENCH_seed.json"
        assert args.threshold == 25.0


class TestAbortFlowState:
    def test_query_timeout_reports_flow_state(self, capsys):
        code = main(
            ["query", "--random", "200x800", "--machines", "4",
             "--timeout", "2",
             "SELECT a, b WHERE (a)-[]->(b), a.value > b.value"]
        )
        assert code == EXIT_ABORTED
        out = capsys.readouterr().out
        assert "flow     :" in out
        assert "buffered=" in out


class TestServeCommand:
    def test_serve_args(self):
        args = build_parser().parse_args(
            ["serve", "--random", "100x400", "--slots", "2",
             "--priority", "3", "--cancel", "1@40",
             "SELECT a WHERE (a)-[]->(b)", "SELECT x WHERE (x)-[]->(y)"]
        )
        assert args.command == "serve"
        assert args.slots == 2
        assert args.priority == [3]
        assert args.cancel == ["1@40"]
        assert len(args.queries) == 2

    def test_serve_end_to_end(self, capsys):
        code = main(
            ["serve", "--random", "100x400", "--machines", "2",
             "--slots", "2",
             "SELECT a, b WHERE (a)-[]->(b)",
             "SELECT a WHERE (a)-[]->(b), (b)-[]->(c)"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "scope window" in out
        assert "q0" in out and "q1" in out
        assert out.count("done") >= 2

    def test_serve_cancel_one_tenant(self, capsys):
        code = main(
            ["serve", "--random", "100x400", "--machines", "2",
             "--slots", "2", "--cancel", "0@5",
             "SELECT a, b WHERE (a)-[]->(b)",
             "SELECT a WHERE (a)-[]->(b), (b)-[]->(c)"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "cancelled" in out
        assert "done" in out

    def test_serve_deadline_prints_scoped_abort(self, capsys):
        code = main(
            ["serve", "--random", "200x800", "--machines", "2",
             "--slots", "2", "--timeout", "10",
             "SELECT a, b WHERE (a)-[]->(b), a.value > b.value",
             "SELECT a WHERE (a)-[]->(b), (b)-[]->(c)"]
        )
        assert code == EXIT_ABORTED
        out = capsys.readouterr().out
        assert "abort [q0]:" in out
        # Flow entries are tenant-tagged under the service.
        assert "[q0] machine" in out

    def test_bad_cancel_spec(self):
        with pytest.raises(SystemExit):
            main(["serve", "--random", "100x400", "--cancel", "zero@x",
                  "SELECT a WHERE (a)-[]->(b)"])


class TestTrafficCommand:
    def test_traffic_args(self):
        args = build_parser().parse_args(
            ["traffic", "--random", "100x400", "--arrivals", "6",
             "--gap", "32", "--slots", "4", "--sweep", "128,32",
             "--chaos", "soak", "--verify-serial"]
        )
        assert args.command == "traffic"
        assert args.arrivals == 6
        assert args.gap == 32
        assert args.sweep == "128,32"
        assert args.chaos == "soak"
        assert args.verify_serial

    def test_traffic_end_to_end(self, capsys):
        code = main(
            ["traffic", "--random", "100x400", "--machines", "2",
             "--arrivals", "5", "--gap", "24", "--slots", "4"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "arrivals=5 completed=5" in out
        assert "latency p50=" in out
        assert "peak_active=" in out

    def test_traffic_verify_serial_gate(self, capsys):
        code = main(
            ["traffic", "--random", "100x400", "--machines", "2",
             "--arrivals", "4", "--gap", "16", "--slots", "4",
             "--verify-serial"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "serial parity: OK" in out

    def test_traffic_sweep(self, capsys):
        code = main(
            ["traffic", "--random", "100x400", "--machines", "2",
             "--arrivals", "4", "--slots", "4", "--sweep", "256,16"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "saturation curve" in out
        assert "256" in out and "16" in out

    def test_traffic_chaos_parity(self, capsys):
        code = main(
            ["traffic", "--random", "100x400", "--machines", "2",
             "--arrivals", "3", "--gap", "24", "--slots", "2",
             "--chaos", "soak", "--verify-serial"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "serial parity: OK" in out


class TestStatsCommand:
    def test_stats_args(self):
        args = build_parser().parse_args(
            ["stats", "--bsbm", "100", "--top", "3", "--json"]
        )
        assert args.command == "stats"
        assert args.top == 3
        assert args.json

    def test_stats_table(self, capsys):
        code = main(["stats", "--random", "80x320", "--top", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "vertex label" in out
        assert "fan-out" in out

    def test_stats_json(self, capsys):
        import json as json_mod

        code = main(["stats", "--random", "80x320", "--json"])
        assert code == 0
        doc = json_mod.loads(capsys.readouterr().out)
        assert doc["num_vertices"] == 80
        assert doc["num_edges"] == 320

    def test_stats_out_saves_graph_with_stats(self, tmp_path, capsys):
        path = str(tmp_path / "g.json")
        code = main(["stats", "--random", "50x200", "--out", path])
        assert code == 0
        reloaded = load_graph(
            build_parser().parse_args(
                ["query", "--graph", path, "SELECT a WHERE (a)"]
            )
        )
        assert reloaded.num_vertices == 50


class TestPlanPolicyFlag:
    def test_plan_cost_explain(self, capsys):
        code = main(
            ["query", "--bsbm", "100", "--plan", "cost", "--explain",
             "SELECT COUNT(*) WHERE (o:offer)-[:offerProduct]->"
             "(p:product)-[:producer]->(pr:producer)"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "planner: policy=cost" in out
        assert "est. cost=" in out
        assert "rejected:" in out
        assert "scores:" in out
        assert "Stage 0" in out

    def test_plan_selectivity_explain(self, capsys):
        code = main(
            ["query", "--random", "60x240", "--plan", "selectivity",
             "--explain", "SELECT a, b WHERE (a)-[]->(b WITH type = 1)"]
        )
        assert code == 0
        assert "planner: policy=selectivity" in capsys.readouterr().out

    def test_plan_cost_runs_query(self, capsys):
        code = main(
            ["query", "--bsbm", "100", "--plan", "cost",
             "SELECT COUNT(*) WHERE (o:offer)-[:offerProduct]->"
             "(p:product)"]
        )
        assert code == 0
        assert "rows" in capsys.readouterr().out

    def test_unknown_plan_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["query", "--random", "60x240", "--plan", "psychic",
                 "SELECT a WHERE (a)"]
            )
