"""Tests for the invariant-aware static analysis pass (``repro lint``).

Fixture packages are written under ``tmp_path`` with the *same* top
package name as the real tree (``repro``), so the default rule scopes
(``repro.runtime``, ``repro.cluster``, ...) apply to fixtures exactly as
they do to the codebase.  The mutation tests operate on verbatim copies
of the real runtime sources: un-guarding one tracer call or deleting one
message-dispatch arm must flip the analyzer to a non-zero exit.
"""

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis import (
    analyze,
    discover_baseline,
    explain,
    json_report,
    load_baseline,
    render_catalog,
    rule_by_id,
    text_report,
    write_baseline,
)
from repro.cli import EXIT_LINT, build_parser, main
from repro.errors import AnalysisError

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_REPRO = REPO_ROOT / "src" / "repro"
BASELINE = REPO_ROOT / "lint-baseline.json"
RUNTIME = SRC_REPRO / "runtime"


def write_package(tmp_path, files):
    """Write fixture modules (with the ``__init__.py`` chain) and
    return the scan root."""
    for rel, source in files.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        directory = target.parent
        while directory != tmp_path:
            init = directory / "__init__.py"
            if not init.exists():
                init.write_text("")
            directory = directory.parent
        target.write_text(textwrap.dedent(source))
    return tmp_path


def rules_of(result):
    return [finding.rule for finding in result.findings]


# ----------------------------------------------------------------------
# RPR001 — determinism
# ----------------------------------------------------------------------

class TestDeterminismRule:
    def test_wall_clock_flagged(self, tmp_path):
        root = write_package(tmp_path, {
            "repro/runtime/clock.py": """\
                import time

                def stamp():
                    return time.time()
                """,
        })
        result = analyze([root])
        assert rules_of(result) == ["RPR001"]
        finding = result.findings[0]
        assert finding.pattern == "time.time"
        assert finding.symbol == "stamp"
        assert finding.severity == "error"
        assert finding.path == "repro/runtime/clock.py"

    def test_from_import_resolved(self, tmp_path):
        root = write_package(tmp_path, {
            "repro/cluster/clock.py": """\
                from time import perf_counter as pc

                def stamp():
                    return pc()
                """,
        })
        result = analyze([root])
        assert rules_of(result) == ["RPR001"]
        assert result.findings[0].pattern == "time.perf_counter"

    def test_module_level_random_flagged(self, tmp_path):
        root = write_package(tmp_path, {
            "repro/chaos/jitter.py": """\
                import random

                def jitter():
                    return random.randint(0, 3)
                """,
        })
        result = analyze([root])
        assert rules_of(result) == ["RPR001"]
        assert result.findings[0].pattern == "random.randint"

    def test_unseeded_random_instance_flagged(self, tmp_path):
        root = write_package(tmp_path, {
            "repro/graph/shuffle.py": """\
                import random

                def make_rng():
                    return random.Random()
                """,
        })
        result = analyze([root])
        assert rules_of(result) == ["RPR001"]
        assert result.findings[0].pattern == "random.Random:unseeded"

    def test_seeded_random_instance_ok(self, tmp_path):
        root = write_package(tmp_path, {
            "repro/graph/shuffle.py": """\
                import random

                def shuffle(items, seed):
                    rng = random.Random(seed)
                    rng.shuffle(items)
                    return rng.random()
                """,
        })
        assert analyze([root]).findings == []

    def test_out_of_scope_module_ignored(self, tmp_path):
        root = write_package(tmp_path, {
            "repro/pgql/stamp.py": """\
                import time

                def stamp():
                    return time.time()
                """,
        })
        assert analyze([root]).findings == []

    def test_inline_suppression(self, tmp_path):
        root = write_package(tmp_path, {
            "repro/runtime/clock.py": """\
                import time

                def stamp():
                    return time.time()  # repro: allow(RPR001)
                """,
        })
        result = analyze([root])
        assert result.findings == []
        assert result.suppressed == 1

    def test_suppression_on_preceding_line(self, tmp_path):
        root = write_package(tmp_path, {
            "repro/runtime/clock.py": """\
                import time

                def stamp():
                    # repro: allow(RPR001)
                    return time.time()
                """,
        })
        result = analyze([root])
        assert result.findings == []
        assert result.suppressed == 1

    def test_suppression_is_rule_specific(self, tmp_path):
        root = write_package(tmp_path, {
            "repro/runtime/clock.py": """\
                import time

                def stamp():
                    return time.time()  # repro: allow(RPR002)
                """,
        })
        result = analyze([root])
        assert rules_of(result) == ["RPR001"]
        assert result.suppressed == 0


# ----------------------------------------------------------------------
# RPR002 — zero-cost-off instrumentation
# ----------------------------------------------------------------------

class TestZeroCostOffRule:
    def test_unguarded_tracer_call_flagged(self, tmp_path):
        root = write_package(tmp_path, {
            "repro/runtime/hot.py": """\
                class Machine:
                    def emit_result(self, ctx):
                        self.trace.emit(ctx)
                """,
        })
        result = analyze([root])
        assert rules_of(result) == ["RPR002"]
        assert result.findings[0].pattern == "self.trace.emit"
        assert result.findings[0].symbol == "Machine.emit_result"

    @pytest.mark.parametrize("body", [
        # canonical guard
        """\
        if self.trace is not None:
            self.trace.emit(ctx)
        """,
        # and-conjunction guard
        """\
        if ready and self.trace is not None:
            self.trace.emit(ctx)
        """,
        # ternary
        """\
        return self.trace.emit(ctx) if self.trace is not None else None
        """,
        # short-circuit and
        """\
        self.trace is not None and self.trace.emit(ctx)
        """,
        # short-circuit or on the None test
        """\
        self.trace is None or self.trace.emit(ctx)
        """,
        # early return
        """\
        if self.trace is None:
            return
        self.trace.emit(ctx)
        """,
        # assert
        """\
        assert self.trace is not None
        self.trace.emit(ctx)
        """,
        # guard on the root handle covers sub-objects
        """\
        if self.telemetry is not None:
            self.telemetry.sampler.observe(1)
        """,
        # truthiness guard
        """\
        if self.trace:
            self.trace.emit(ctx)
        """,
    ])
    def test_guarded_shapes_ok(self, tmp_path, body):
        indented = textwrap.indent(textwrap.dedent(body), " " * 8)
        root = write_package(tmp_path, {
            "repro/runtime/hot.py": (
                "class Machine:\n"
                "    def emit_result(self, ctx):\n" + indented
            ),
        })
        assert analyze([root]).findings == []

    def test_guard_does_not_leak_out_of_branch(self, tmp_path):
        root = write_package(tmp_path, {
            "repro/runtime/hot.py": """\
                class Machine:
                    def emit_result(self, ctx):
                        if self.trace is not None:
                            pass
                        self.trace.emit(ctx)
                """,
        })
        assert rules_of(analyze([root])) == ["RPR002"]

    def test_reassignment_invalidates_guard(self, tmp_path):
        root = write_package(tmp_path, {
            "repro/runtime/hot.py": """\
                def run(tracer, other):
                    if tracer is not None:
                        tracer = other
                        tracer.emit(1)
                """,
        })
        assert rules_of(analyze([root])) == ["RPR002"]

    def test_nested_scope_does_not_inherit_guard(self, tmp_path):
        root = write_package(tmp_path, {
            "repro/runtime/hot.py": """\
                def run(tracer):
                    if tracer is not None:
                        def flush():
                            tracer.emit(1)
                        return flush
                """,
        })
        assert rules_of(analyze([root])) == ["RPR002"]

    def test_sibling_guard_is_not_enough(self, tmp_path):
        # The guard must cover the handle actually called: guarding
        # `telemetry` says nothing about a bare `sampler` local.
        root = write_package(tmp_path, {
            "repro/runtime/hot.py": """\
                def run(telemetry, sampler):
                    if telemetry is not None:
                        sampler.flush(1)
                """,
        })
        assert rules_of(analyze([root])) == ["RPR002"]

    def test_out_of_scope_module_ignored(self, tmp_path):
        root = write_package(tmp_path, {
            "repro/obs/hot.py": """\
                def run(tracer):
                    tracer.emit(1)
                """,
        })
        assert analyze([root]).findings == []

    def test_non_tracer_objects_ignored(self, tmp_path):
        root = write_package(tmp_path, {
            "repro/runtime/hot.py": """\
                def run(queue, trace_name):
                    queue.append(1)
                    return trace_name.upper()
                """,
        })
        assert analyze([root]).findings == []


# ----------------------------------------------------------------------
# RPR003 — protocol exhaustiveness (cross-module)
# ----------------------------------------------------------------------

FIXTURE_MESSAGES = """\
    class Ping:
        def __init__(self, stage):
            self.stage = stage

    class Pong:
        def __init__(self, stage):
            self.stage = stage

    class Phantom:
        '''Synthetic unhandled message type.'''

    class _Internal:
        '''Private helper: not part of the protocol.'''
    """

FIXTURE_MACHINE = """\
    from repro.runtime.messages import Ping, Pong, Phantom

    class Machine:
        def dispatch(self, payload):
            if isinstance(payload, (Ping, Pong)):
                return payload.stage
            raise ValueError(payload)

        def send_all(self, api):
            api.send(Ping(1))
            api.send(Pong(2))
            api.send(Phantom())
    """


class TestProtocolExhaustivenessRule:
    def test_synthetic_unhandled_class_flagged(self, tmp_path):
        root = write_package(tmp_path, {
            "repro/runtime/messages.py": FIXTURE_MESSAGES,
            "repro/runtime/machine.py": FIXTURE_MACHINE,
        })
        result = analyze([root])
        assert rules_of(result) == ["RPR003"]
        finding = result.findings[0]
        assert finding.pattern == "Phantom:unhandled"
        assert finding.severity == "error"
        assert finding.path == "repro/runtime/messages.py"
        assert "no isinstance dispatch arm" in finding.message

    def test_unconstructed_class_is_a_warning(self, tmp_path):
        machine = FIXTURE_MACHINE.replace("api.send(Phantom())\n", "") \
            .replace(
                "if isinstance(payload, (Ping, Pong)):",
                "if isinstance(payload, (Ping, Pong, Phantom)):",
            )
        root = write_package(tmp_path, {
            "repro/runtime/messages.py": FIXTURE_MESSAGES,
            "repro/runtime/machine.py": machine,
        })
        result = analyze([root])
        assert rules_of(result) == ["RPR003"]
        finding = result.findings[0]
        assert finding.pattern == "Phantom:unconstructed"
        assert finding.severity == "warning"

    def test_private_classes_ignored(self, tmp_path):
        root = write_package(tmp_path, {
            "repro/runtime/messages.py": FIXTURE_MESSAGES,
            "repro/runtime/machine.py": FIXTURE_MACHINE.replace(
                "if isinstance(payload, (Ping, Pong)):",
                "if isinstance(payload, (Ping, Pong, Phantom)):",
            ),
        })
        # _Internal is neither handled nor constructed, yet not flagged.
        assert analyze([root]).findings == []

    def test_messages_without_dispatcher_skipped(self, tmp_path):
        root = write_package(tmp_path, {
            "repro/runtime/messages.py": FIXTURE_MESSAGES,
        })
        assert analyze([root]).findings == []

    def test_handler_in_reliability_module_counts(self, tmp_path):
        root = write_package(tmp_path, {
            "repro/runtime/messages.py": """\
                class Frame:
                    pass
                """,
            "repro/runtime/machine.py": """\
                def noop(payload):
                    return payload
                """,
            "repro/runtime/reliability.py": """\
                from repro.runtime.messages import Frame

                def receive(payload):
                    if isinstance(payload, Frame):
                        return payload
                    return Frame()
                """,
        })
        assert analyze([root]).findings == []


# ----------------------------------------------------------------------
# RPR004 — mutable defaults / RPR005 — exception hygiene
# ----------------------------------------------------------------------

class TestHygieneRules:
    def test_mutable_default_flagged(self, tmp_path):
        root = write_package(tmp_path, {
            "repro/plan/opts.py": """\
                def plan(stages=[], *, hints={}):
                    return stages, hints
                """,
        })
        result = analyze([root])
        assert rules_of(result) == ["RPR004", "RPR004"]
        assert result.findings[0].pattern == "plan(stages)"
        assert result.findings[1].pattern == "plan(hints)"

    def test_mutable_call_default_flagged(self, tmp_path):
        root = write_package(tmp_path, {
            "repro/plan/opts.py": """\
                def plan(stages=list()):
                    return stages
                """,
        })
        assert rules_of(analyze([root])) == ["RPR004"]

    def test_immutable_defaults_ok(self, tmp_path):
        root = write_package(tmp_path, {
            "repro/plan/opts.py": """\
                def plan(stages=(), hint=None, name="x", seqs=frozenset()):
                    return stages, hint, name, seqs
                """,
        })
        assert analyze([root]).findings == []

    def test_bare_except_flagged(self, tmp_path):
        root = write_package(tmp_path, {
            "repro/runtime/guard.py": """\
                def step(worker):
                    try:
                        worker.step()
                    except:
                        pass
                """,
        })
        result = analyze([root])
        assert rules_of(result) == ["RPR005"]
        assert result.findings[0].pattern == "bare:except"

    def test_broad_except_without_reraise_flagged(self, tmp_path):
        root = write_package(tmp_path, {
            "repro/runtime/guard.py": """\
                def step(worker):
                    try:
                        worker.step()
                    except (ValueError, Exception) as exc:
                        print(exc)
                """,
        })
        result = analyze([root])
        assert rules_of(result) == ["RPR005"]
        assert "QueryAborted" in result.findings[0].message

    def test_broad_except_with_reraise_ok(self, tmp_path):
        root = write_package(tmp_path, {
            "repro/runtime/guard.py": """\
                def step(worker):
                    try:
                        worker.step()
                    except Exception:
                        worker.cleanup()
                        raise
                """,
        })
        assert analyze([root]).findings == []

    def test_narrow_except_ok(self, tmp_path):
        root = write_package(tmp_path, {
            "repro/runtime/guard.py": """\
                def step(worker):
                    try:
                        worker.step()
                    except ValueError:
                        pass
                """,
        })
        assert analyze([root]).findings == []


# ----------------------------------------------------------------------
# Baseline workflow
# ----------------------------------------------------------------------

class TestBaseline:
    def _dirty_tree(self, tmp_path):
        return write_package(tmp_path, {
            "repro/runtime/clock.py": """\
                import time

                def stamp():
                    return time.time()
                """,
        })

    def test_round_trip(self, tmp_path):
        root = self._dirty_tree(tmp_path)
        first = analyze([root])
        assert len(first.findings) == 1
        baseline_path = tmp_path / "baseline.json"
        assert write_baseline(first.findings, str(baseline_path)) == 1
        second = analyze([root], baseline_path=str(baseline_path))
        assert second.findings == []
        assert second.baselined == 1
        assert second.stale_baseline == []

    def test_stale_entry_reported(self, tmp_path):
        root = self._dirty_tree(tmp_path)
        baseline_path = tmp_path / "baseline.json"
        write_baseline(analyze([root]).findings, str(baseline_path))
        (tmp_path / "repro" / "runtime" / "clock.py").write_text(
            "def stamp():\n    return 0\n"
        )
        result = analyze([root], baseline_path=str(baseline_path))
        assert result.findings == []
        assert result.baselined == 0
        assert len(result.stale_baseline) == 1
        assert "time.time" in result.stale_baseline[0].describe()

    def test_entries_require_comments(self, tmp_path):
        baseline_path = tmp_path / "baseline.json"
        baseline_path.write_text(json.dumps({
            "schema": "repro-lint-baseline/1",
            "entries": [{
                "rule": "RPR001",
                "path": "repro/runtime/clock.py",
                "pattern": "time.time",
            }],
        }))
        with pytest.raises(AnalysisError):
            load_baseline(str(baseline_path))

    def test_unknown_schema_rejected(self, tmp_path):
        baseline_path = tmp_path / "baseline.json"
        baseline_path.write_text(json.dumps({"schema": "nope"}))
        with pytest.raises(AnalysisError):
            load_baseline(str(baseline_path))

    def test_discovery_walks_upward(self, tmp_path):
        root = self._dirty_tree(tmp_path)
        (tmp_path / "lint-baseline.json").write_text(json.dumps({
            "schema": "repro-lint-baseline/1", "entries": [],
        }))
        found = discover_baseline([str(root / "repro" / "runtime")])
        assert found == str(tmp_path / "lint-baseline.json")


# ----------------------------------------------------------------------
# Mutation tests on the real sources (acceptance criteria)
# ----------------------------------------------------------------------

class TestMutations:
    def test_unmutated_runtime_copies_are_clean(self, tmp_path):
        root = write_package(tmp_path, {
            "repro/runtime/machine.py": (RUNTIME / "machine.py").read_text(),
            "repro/runtime/messages.py":
                (RUNTIME / "messages.py").read_text(),
            "repro/runtime/reliability.py":
                (RUNTIME / "reliability.py").read_text(),
        })
        assert analyze([root]).findings == []

    def test_unguarding_one_tracer_call_fails(self, tmp_path):
        source = (RUNTIME / "machine.py").read_text()
        guard = "if self.trace is not None:"
        assert guard in source
        root = write_package(tmp_path, {
            "repro/runtime/machine.py": source.replace(guard, "if True:", 1),
        })
        result = analyze([root])
        assert "RPR002" in rules_of(result)
        assert result.fails("error")

    def test_deleting_one_message_handler_fails(self, tmp_path):
        machine = (RUNTIME / "machine.py").read_text()
        arm = "isinstance(payload, Completed)"
        assert arm in machine
        root = write_package(tmp_path, {
            "repro/runtime/machine.py": machine.replace(arm, "False", 1),
            "repro/runtime/messages.py":
                (RUNTIME / "messages.py").read_text(),
            "repro/runtime/reliability.py":
                (RUNTIME / "reliability.py").read_text(),
        })
        result = analyze([root])
        assert any(
            finding.rule == "RPR003"
            and finding.pattern == "Completed:unhandled"
            for finding in result.findings
        )
        assert result.fails("error")


# ----------------------------------------------------------------------
# Self-hosting: the tree itself stays clean
# ----------------------------------------------------------------------

class TestSelfHosting:
    def test_src_repro_has_zero_unbaselined_findings(self):
        result = analyze([str(SRC_REPRO)], baseline_path=str(BASELINE))
        assert result.findings == []
        assert result.stale_baseline == []
        # The only whitelisted findings are the reviewed wall-clock
        # sites (simulator run bracket + bench harness + planner
        # pillar).
        assert result.baselined == 6

    def test_checked_in_baseline_entries_are_commented(self):
        for entry in load_baseline(str(BASELINE)):
            assert len(entry.comment) > 40, entry.describe()

    def test_cli_gate_exits_zero(self, capsys):
        code = main([
            "lint", str(SRC_REPRO),
            "--baseline", str(BASELINE),
            "--fail-on", "warning",
        ])
        assert code == 0
        assert "0 findings" in capsys.readouterr().out


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------

class TestLintCli:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["lint"])
        assert args.command == "lint"
        assert args.paths == []
        assert args.format == "text"
        assert args.fail_on == "error"

    def test_json_format(self, tmp_path, capsys):
        root = write_package(tmp_path, {
            "repro/runtime/clock.py": """\
                import time

                def stamp():
                    return time.time()
                """,
        })
        code = main(["lint", str(root), "--format", "json",
                     "--no-baseline"])
        assert code == EXIT_LINT
        document = json.loads(capsys.readouterr().out)
        assert document["schema"] == "repro-lint/1"
        assert document["summary"]["errors"] == 1
        assert document["findings"][0]["rule"] == "RPR001"

    def test_json_out_artifact(self, tmp_path, capsys):
        root = write_package(tmp_path, {
            "repro/runtime/clock.py": "def stamp():\n    return 0\n",
        })
        out = tmp_path / "report.json"
        code = main(["lint", str(root), "--json-out", str(out),
                     "--no-baseline"])
        assert code == 0
        document = json.loads(out.read_text())
        assert document["summary"]["errors"] == 0
        capsys.readouterr()

    def test_fail_on_warning_vs_error(self, tmp_path, capsys):
        machine = FIXTURE_MACHINE.replace("api.send(Phantom())\n", "") \
            .replace(
                "if isinstance(payload, (Ping, Pong)):",
                "if isinstance(payload, (Ping, Pong, Phantom)):",
            )
        root = write_package(tmp_path, {
            "repro/runtime/messages.py": FIXTURE_MESSAGES,
            "repro/runtime/machine.py": machine,
        })
        # Only a warning-level finding: fail-on error passes ...
        assert main(["lint", str(root), "--no-baseline"]) == 0
        # ... fail-on warning does not.
        assert main(["lint", str(root), "--no-baseline",
                     "--fail-on", "warning"]) == EXIT_LINT
        capsys.readouterr()

    def test_write_baseline_workflow(self, tmp_path, capsys):
        root = write_package(tmp_path, {
            "repro/runtime/clock.py": """\
                import time

                def stamp():
                    return time.time()
                """,
        })
        baseline_path = tmp_path / "generated-baseline.json"
        assert main(["lint", str(root),
                     "--write-baseline", str(baseline_path)]) == 0
        assert main(["lint", str(root),
                     "--baseline", str(baseline_path)]) == 0
        capsys.readouterr()

    def test_explain_known_rule(self, capsys):
        assert main(["lint", "--explain", "RPR003"]) == 0
        out = capsys.readouterr().out
        assert "RPR003" in out
        assert "termination" in out

    def test_explain_unknown_rule(self, capsys):
        assert main(["lint", "--explain", "RPR999"]) == 2
        capsys.readouterr()

    def test_missing_path_is_usage_error(self):
        with pytest.raises(SystemExit):
            main(["lint", "definitely/not/a/path"])


# ----------------------------------------------------------------------
# Docs: --explain and the catalogue share one source of truth
# ----------------------------------------------------------------------

class TestDocSync:
    def test_catalog_embedded_in_docs(self):
        doc = (REPO_ROOT / "docs" / "static-analysis.md").read_text()
        assert render_catalog() in doc

    def test_explain_reuses_rule_rationale(self):
        for rule_id in ("RPR001", "RPR002", "RPR003", "RPR004", "RPR005",
                        "RPR006", "RPR007", "RPR008", "RPR009"):
            rule = rule_by_id(rule_id)
            text = explain(rule_id)
            assert rule.rationale in text
            for line in rule.example.splitlines():
                assert line in text  # --explain indents, substring holds
            # ... which is the same text the doc catalogue renders.
            assert rule.rationale in render_catalog()
