"""Integration tests for the chaos & reliability subsystem.

The headline guarantee: a query running under seeded message chaos
(drops, duplicates, reordering) returns *exactly* the same results as
the fault-free run, because the reliability layer restores the ordered
exactly-once delivery the termination protocol requires.  Crashes and
deadlines are unrecoverable by design and abort with a structured
:class:`~repro.errors.QueryAborted` carrying partial state.
"""

import pytest

from repro import ClusterConfig, run_query, uniform_random_graph
from repro.chaos import ChaosConfig, FaultPlan, PROFILES, profile
from repro.errors import ClusterConfigError, QueryAborted
from repro.plan import PlannerOptions

QUERY = "SELECT a, b, c WHERE (a)-[]->(b)-[]->(c), a.type = 1"


@pytest.fixture(scope="module")
def chaos_graph():
    return uniform_random_graph(200, 1_200, seed=21, num_types=4)


@pytest.fixture(scope="module")
def clean_rows(chaos_graph):
    result = run_query(chaos_graph, QUERY, ClusterConfig(num_machines=4))
    return sorted(result.rows)


def chaos_run(graph, chaos, query=QUERY, options=None, **config_kwargs):
    config = ClusterConfig(num_machines=4, chaos=chaos, reliability=True,
                           **config_kwargs)
    return run_query(graph, query, config, options=options)


class TestChaosParity:
    @pytest.mark.parametrize("name", sorted(PROFILES))
    def test_profiles_preserve_results(self, chaos_graph, clean_rows, name):
        result = chaos_run(chaos_graph, profile(name, seed=7))
        assert sorted(result.rows) == clean_rows

    @pytest.mark.parametrize("seed", [0, 1, 42])
    def test_soak_parity_across_seeds(self, chaos_graph, clean_rows, seed):
        result = chaos_run(chaos_graph, profile("soak", seed=seed))
        assert sorted(result.rows) == clean_rows

    def test_faults_actually_injected(self, chaos_graph):
        result = chaos_run(chaos_graph, profile("soak", seed=7))
        metrics = result.metrics
        assert metrics.messages_dropped > 0
        assert metrics.messages_duplicated > 0
        assert metrics.messages_delayed > 0
        # Every injected fault shows up as recovery work somewhere.
        assert metrics.retransmits > 0
        assert metrics.dup_frames_dropped > 0
        assert metrics.reordered_frames > 0
        assert "retransmits=" in metrics.reliability_summary()

    def test_memory_bound_holds_under_chaos(self, chaos_graph):
        """The flow-control receiver bound survives fault injection:
        duplicates are dropped before the buffers, retransmits replace
        (never add to) in-flight frames."""
        machines, window, bulk = 4, 2, 4
        config = ClusterConfig(
            num_machines=machines,
            flow_control_window=window,
            bulk_message_size=bulk,
            dynamic_flow_control=False,
            chaos=profile("soak", seed=5),
            reliability=True,
        )
        result = run_query(chaos_graph, QUERY, config)
        num_stages = result.plan.num_stages
        bound = num_stages * (machines - 1) * window * bulk \
            + num_stages * (machines - 1) * bulk
        assert result.metrics.peak_buffered_contexts <= bound

    def test_chaos_emits_trace_events(self, chaos_graph):
        options = PlannerOptions(trace=True)
        result = chaos_run(chaos_graph, profile("soak", seed=7),
                           options=options)
        kinds = {event.kind for event in result.trace.events}
        assert "chaos_drop" in kinds
        assert "chaos_duplicate" in kinds
        assert "chaos_delay" in kinds
        assert "retransmit" in kinds
        assert "dup_frame_dropped" in kinds

    def test_chaos_runs_are_deterministic(self, chaos_graph):
        first = chaos_run(chaos_graph, profile("soak", seed=11))
        second = chaos_run(chaos_graph, profile("soak", seed=11))
        assert first.rows == second.rows
        assert first.metrics.ticks == second.metrics.ticks
        assert first.metrics.retransmits == second.metrics.retransmits
        assert first.metrics.messages_dropped == \
            second.metrics.messages_dropped


class TestStalls:
    def test_stall_recovers_with_identical_results(self, chaos_graph,
                                                   clean_rows):
        chaos = ChaosConfig(stalls=((1, 5, 20), (2, 10, 10)))
        result = chaos_run(chaos_graph, chaos)
        assert sorted(result.rows) == clean_rows

    def test_stall_emits_trace_events(self, chaos_graph):
        chaos = ChaosConfig(stalls=((1, 5, 20),))
        result = chaos_run(chaos_graph, chaos,
                           options=PlannerOptions(trace=True))
        kinds = {event.kind for event in result.trace.events}
        assert "chaos_stall" in kinds
        assert "chaos_resume" in kinds

    def test_stall_without_message_faults_needs_no_reliability(
            self, chaos_graph, clean_rows):
        config = ClusterConfig(num_machines=4,
                               chaos=ChaosConfig(stalls=((0, 3, 8),)))
        result = run_query(chaos_graph, QUERY, config)
        assert sorted(result.rows) == clean_rows


class TestAborts:
    def test_crash_aborts_with_partial_state(self, chaos_graph):
        chaos = ChaosConfig(crashes=((2, 15),))
        with pytest.raises(QueryAborted) as info:
            chaos_run(chaos_graph, chaos)
        aborted = info.value
        assert "machine 2 crashed" in aborted.reason
        assert aborted.tick == 15
        assert aborted.metrics is not None
        assert aborted.metrics.ticks == 15
        assert "stages complete" in aborted.detail

    def test_crash_under_message_chaos_reports_unacked(self, chaos_graph):
        chaos = profile("drop", seed=3).replace(crashes=((1, 20),))
        with pytest.raises(QueryAborted) as info:
            chaos_run(chaos_graph, chaos)
        assert "unacked" in info.value.detail

    def test_crash_emits_abort_trace_event(self, chaos_graph):
        chaos = ChaosConfig(crashes=((0, 10),))
        with pytest.raises(QueryAborted) as info:
            chaos_run(chaos_graph, chaos,
                      options=PlannerOptions(trace=True))
        trace = info.value.trace
        assert trace is not None
        kinds = [event.kind for event in trace.events]
        assert "chaos_crash" in kinds
        assert "aborted" in kinds
        assert trace.meta.get("aborted")

    def test_deadline_aborts(self, chaos_graph):
        config = ClusterConfig(num_machines=4, query_deadline_ticks=3)
        with pytest.raises(QueryAborted) as info:
            run_query(chaos_graph, QUERY, config)
        aborted = info.value
        assert "deadline" in aborted.reason
        assert aborted.tick == 3
        assert aborted.metrics is not None

    def test_timeout_option_overrides_config(self, chaos_graph):
        options = PlannerOptions(timeout_ticks=4)
        with pytest.raises(QueryAborted) as info:
            run_query(chaos_graph, QUERY, ClusterConfig(num_machines=4),
                      options=options)
        assert info.value.tick == 4

    def test_generous_deadline_does_not_fire(self, chaos_graph, clean_rows):
        config = ClusterConfig(num_machines=4, query_deadline_ticks=100_000)
        result = run_query(chaos_graph, QUERY, config)
        assert sorted(result.rows) == clean_rows


class TestFaultPlan:
    def fates(self, config, seed, n=200):
        plan = FaultPlan(config, default_seed=seed)
        return [plan.message_fate(tick, 0, 1) for tick in range(n)]

    def test_same_seed_same_fates(self):
        config = profile("soak")
        assert self.fates(config, 9) == self.fates(config, 9)

    def test_different_seed_different_fates(self):
        config = profile("soak")
        assert self.fates(config, 1) != self.fates(config, 2)

    def test_config_seed_wins_over_default(self):
        config = profile("soak", seed=5)
        assert self.fates(config, 1) == self.fates(config, 2)

    def test_dropped_never_duplicated(self):
        config = ChaosConfig(drop_rate=0.5, duplicate_rate=0.5)
        for drop, duplicate, _delay, _dup_delay in self.fates(config, 3):
            assert not (drop and duplicate)

    def test_zero_rates_inject_nothing(self):
        for fate in self.fates(ChaosConfig(), 4):
            assert fate == (False, False, 0, 0)


class TestConfigValidation:
    def test_message_faults_require_reliability(self):
        with pytest.raises(ClusterConfigError):
            ClusterConfig(chaos=ChaosConfig(drop_rate=0.1))

    def test_bad_rate_rejected(self):
        with pytest.raises(ClusterConfigError):
            ChaosConfig(drop_rate=1.5)

    def test_bad_stall_rejected(self):
        with pytest.raises(ClusterConfigError):
            ChaosConfig(stalls=((0, 5, 0),))

    def test_bad_crash_rejected(self):
        with pytest.raises(ClusterConfigError):
            ChaosConfig(crashes=((-1, 5),))

    def test_unknown_profile_rejected(self):
        with pytest.raises(ClusterConfigError):
            profile("tsunami")

    def test_bad_deadline_rejected(self):
        with pytest.raises(ClusterConfigError):
            ClusterConfig(query_deadline_ticks=0)

    def test_chaos_machine_out_of_range_rejected(self, chaos_graph):
        chaos = ChaosConfig(crashes=((99, 5),))
        with pytest.raises(ClusterConfigError):
            chaos_run(chaos_graph, chaos)
