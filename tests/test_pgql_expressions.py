"""Unit tests for expression evaluation and analysis helpers."""

import pytest

from repro.errors import PgqlValidationError
from repro.pgql import (
    Binary,
    Literal,
    MappingEnv,
    PropRef,
    VarRef,
    evaluate,
    evaluate_predicate,
    parse,
    referenced_props,
    referenced_vars,
    split_conjuncts,
)


def constraint(text):
    return parse("SELECT a WHERE (a), %s" % text).constraints[0]


class TestEvaluate:
    def env(self):
        return MappingEnv(
            ids={"a": 3, "b": 5},
            props={("a", "age"): 20, ("a", "name"): "x", ("b", "age"): 10},
            labels={"a": "person"},
        )

    def test_literals_and_arith(self):
        env = self.env()
        assert evaluate(constraint("a.age + 5 = 25"), env) is True
        assert evaluate(constraint("a.age * 2 - 10 = 30"), env) is True
        assert evaluate(constraint("a.age / 8 = 2.5"), env) is True
        assert evaluate(constraint("a.age % 3 = 2"), env) is True

    def test_comparisons(self):
        env = self.env()
        assert evaluate(constraint("a.age > b.age"), env) is True
        assert evaluate(constraint("a.age <= 19"), env) is False
        assert evaluate(constraint("a.age != b.age"), env) is True

    def test_boolean_logic(self):
        env = self.env()
        assert evaluate(
            constraint("a.age > 5 AND a.age < 25 OR a.age = 99"), env
        ) is True
        assert evaluate(constraint("NOT a.age = 20"), env) is False

    def test_var_refs_are_ids(self):
        env = self.env()
        assert evaluate(constraint("a != b"), env) is True
        assert evaluate(constraint("a.id() = 3"), env) is True

    def test_label_call(self):
        env = self.env()
        assert evaluate(constraint('a.label() = "person"'), env) is True

    def test_string_equality(self):
        env = self.env()
        assert evaluate(constraint('a.name = "x"'), env) is True

    def test_cross_type_equality_is_false_not_error(self):
        env = self.env()
        assert evaluate(constraint('a.age = "x"'), env) is False

    def test_unbound_var_raises(self):
        with pytest.raises(PgqlValidationError):
            evaluate(VarRef("zz"), MappingEnv())

    def test_missing_prop_raises(self):
        with pytest.raises(PgqlValidationError):
            evaluate(PropRef("a", "missing"), self.env())

    def test_aggregate_cannot_evaluate_per_row(self):
        expr = parse(
            "SELECT COUNT(*) WHERE (a) GROUP BY a.x"
        ).select_items[0].expr
        with pytest.raises(PgqlValidationError):
            evaluate(expr, self.env())


class TestEvaluatePredicate:
    def test_type_error_is_false(self):
        env = MappingEnv(props={("a", "age"): "not a number"})
        assert evaluate_predicate(constraint("a.age > 5"), env) is False

    def test_division_by_zero_is_false(self):
        env = MappingEnv(props={("a", "age"): 10})
        assert evaluate_predicate(constraint("a.age / 0 > 1"), env) is False

    def test_truthiness(self):
        env = MappingEnv(props={("a", "age"): 10})
        assert evaluate_predicate(constraint("a.age"), env) is True


class TestAnalysis:
    def test_referenced_vars(self):
        expr = constraint("a.x = b.y AND c != a")
        assert referenced_vars(expr) == {"a", "b", "c"}

    def test_referenced_props(self):
        expr = constraint("a.x = b.y AND a.z > 1")
        assert referenced_props(expr) == {("a", "x"), ("b", "y"), ("a", "z")}

    def test_split_conjuncts(self):
        expr = constraint("a.x = 1 AND a.y = 2 AND (a.z = 3 OR a.w = 4)")
        parts = split_conjuncts(expr)
        assert len(parts) == 3
        # The OR stays intact.
        assert parts[2].op == "OR"

    def test_split_single(self):
        expr = constraint("a.x = 1 OR a.y = 2")
        assert split_conjuncts(expr) == [expr]

    def test_walk_covers_all_nodes(self):
        expr = Binary("+", Literal(1), Binary("*", Literal(2), Literal(3)))
        kinds = [type(node).__name__ for node in expr.walk()]
        assert kinds.count("Binary") == 2
        assert kinds.count("Literal") == 3
