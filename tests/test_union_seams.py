"""Tests for the union/aggregation seams of quantified-path execution.

Quantified paths run as a union of fixed-length expansions; these tests
pin down how the per-expansion metrics, stage profiles, and EXPLAIN
ANALYZE output are stitched back together.
"""

import pytest

from repro import ClusterConfig, PlannerOptions, QueryMetrics
from repro.cluster.metrics import MachineMetrics
from repro.runtime import PgxdAsyncEngine


@pytest.fixture
def engine(random_graph):
    return PgxdAsyncEngine(random_graph, ClusterConfig(num_machines=3))


class TestQueryMetricsMerge:
    def test_counters_sum_and_peaks_max(self):
        first = QueryMetrics(ticks=10, num_machines=3, total_ops=100,
                             work_messages=7, num_results=4,
                             peak_buffered_contexts=20, peak_live_frames=5,
                             flow_control_blocks=2)
        second = QueryMetrics(ticks=6, num_machines=3, total_ops=50,
                              work_messages=3, num_results=1,
                              peak_buffered_contexts=9, peak_live_frames=8,
                              flow_control_blocks=1)
        merged = first.merge(second)
        assert merged is first
        assert merged.ticks == 16
        assert merged.total_ops == 150
        assert merged.work_messages == 10
        assert merged.num_results == 5
        assert merged.flow_control_blocks == 3
        assert merged.num_machines == 3
        assert merged.peak_buffered_contexts == 20
        assert merged.peak_live_frames == 8

    def test_every_field_participates(self):
        # A field added to QueryMetrics must merge by default; this
        # catches a new counter being forgotten (the old _merge_metrics
        # helper enumerated fields by hand and silently dropped new ones).
        ones = {
            spec.name: 1
            for spec in QueryMetrics.__dataclass_fields__.values()
            if spec.name not in ("per_machine", "wall_time_seconds")
        }
        merged = QueryMetrics(**ones).merge(QueryMetrics(**ones))
        for name, value in ones.items():
            expected = 1 if name in QueryMetrics._MERGE_BY_MAX else 2
            assert getattr(merged, name) == expected, name

    def test_per_machine_merged_positionally(self):
        first = QueryMetrics(
            num_machines=2,
            per_machine=[MachineMetrics(ops=5, peak_live_frames=3),
                         MachineMetrics(ops=7)],
        )
        second = QueryMetrics(
            num_machines=2,
            per_machine=[MachineMetrics(ops=1, peak_live_frames=9),
                         MachineMetrics(ops=2)],
        )
        merged = first.merge(second)
        assert [m.ops for m in merged.per_machine] == [6, 9]
        assert merged.per_machine[0].peak_live_frames == 9

    def test_per_machine_dropped_on_shape_mismatch(self):
        first = QueryMetrics(per_machine=[MachineMetrics(ops=5)])
        second = QueryMetrics(per_machine=[MachineMetrics(), MachineMetrics()])
        assert first.merge(second).per_machine == []


class TestUnionExecution:
    def test_union_metrics_aggregate_expansions(self, engine, random_graph):
        union = engine.query("SELECT a, b WHERE (a)-/{1,2}/->(b)")
        hop1 = engine.query("SELECT a, b WHERE (a)-[]->(b)")
        # The union ran both expansions back to back: its tick count and
        # message volume strictly dominate the one-hop run alone.
        assert union.metrics.ticks > hop1.metrics.ticks
        assert union.metrics.work_messages >= hop1.metrics.work_messages
        assert union.metrics.num_machines == 3
        assert union.metrics.num_results == len(union.rows)

    def test_distinct_order_by_limit_over_expansions(self, engine):
        full = engine.query("SELECT DISTINCT a, b WHERE (a)-/{1,3}/->(b) "
                            "ORDER BY a, b")
        limited = engine.query("SELECT DISTINCT a, b WHERE (a)-/{1,3}/->(b) "
                               "ORDER BY a, b LIMIT 5")
        assert len(set(full.rows)) == len(full.rows)
        assert full.rows == sorted(full.rows)
        assert limited.rows == full.rows[:5]
        # DISTINCT/LIMIT apply after the union; the metrics keep the raw
        # emission count, which dominates the deduplicated row count.
        assert limited.metrics.num_results >= len(full.rows)

    def test_union_stage_profile_aggregated(self, engine):
        result = engine.query("SELECT a, b WHERE (a)-/{1,3}/->(b)")
        profile = result.stage_profile
        assert profile, "union queries must keep a stage profile"
        # Reported against the longest expansion's plan.
        assert len(profile) == result.plan.num_stages
        assert all(stage["visits"] > 0 for stage in profile)
        single = engine.query("SELECT a, b WHERE (a)-[]->(b)").stage_profile
        # Stage 0 aggregates the root visits of all three expansions.
        assert profile[0]["visits"] == 3 * single[0]["visits"]


class TestExplainAnalyze:
    def test_direct_query(self, engine):
        result = engine.query("SELECT a, b WHERE (a)-[]->(b), "
                              "a.value > b.value")
        text = result.explain_analyze()
        assert "visits=" in text
        assert "passes=" in text
        for stage in range(result.plan.num_stages):
            assert "Stage %d" % stage in text

    def test_union_query(self, engine):
        result = engine.query("SELECT a, b WHERE (a)-/{1,3}/->(b)")
        text = result.explain_analyze()
        assert "visits=" in text
        # Every aggregated stage row is printed, including the deepest
        # stage that only the {3} expansion reaches.
        assert text.count("visits=") == result.plan.num_stages

    def test_union_query_with_trace(self, engine):
        result = engine.query(
            "SELECT a, b WHERE (a)-/{1,2}/->(b)",
            options=PlannerOptions(trace=True),
        )
        text = result.explain_analyze()
        assert "total: %d ticks" % result.metrics.ticks in text
