"""Unit tests for the reliable-channel layer (``runtime.reliability``).

These drive a :class:`ReliableTransport` directly against a fake
``MachineAPI``, so every delivery guarantee — in-order release, dedup,
gap buffering, ack bookkeeping, retransmission with backoff — is pinned
down without a simulator in the loop.
"""

from repro.cluster import ClusterConfig, MachineMetrics
from repro.runtime import RelAck, RelFrame, ReliableTransport


class FakeApi:
    """Minimal MachineAPI: records sends, exposes a settable clock."""

    def __init__(self, machine_id=0, num_machines=2):
        self.machine_id = machine_id
        self.num_machines = num_machines
        self.now = 0
        self.sent = []

    def send(self, dst, payload, size=0):
        self.sent.append((dst, payload, size))


def make(rto=10, **config_kwargs):
    api = FakeApi()
    config = ClusterConfig(retransmit_timeout=rto, **config_kwargs)
    metrics = MachineMetrics()
    return ReliableTransport(api, config, metrics), api, metrics


def frames_sent(api, dst=None):
    return [payload for sent_dst, payload, _size in api.sent
            if isinstance(payload, RelFrame)
            and (dst is None or sent_dst == dst)]


class TestSendPath:
    def test_send_wraps_in_sequenced_frames(self):
        transport, api, _metrics = make()
        transport.send(1, "a")
        transport.send(1, "b")
        transport.send(0, "c")  # separate channel: its own numbering
        sent = frames_sent(api)
        assert [frame.seq for frame in sent] == [0, 1, 0]
        assert [frame.payload for frame in sent] == ["a", "b", "c"]
        assert transport.unacked_frames() == 3

    def test_frame_trace_name_shows_inner_type(self):
        frame = RelFrame(0, "payload", 0)
        assert frame.trace_name == "Rel[str]"


class TestReceivePath:
    def test_in_order_frames_released_immediately(self):
        transport, api, _metrics = make()
        out = transport.receive(1, RelFrame(0, "a", 0))
        assert out == [(1, "a")]
        out = transport.receive(1, RelFrame(1, "b", 0))
        assert out == [(1, "b")]

    def test_out_of_order_buffered_then_released_in_order(self):
        transport, api, metrics = make()
        assert transport.receive(1, RelFrame(2, "c", 0)) == []
        assert transport.receive(1, RelFrame(1, "b", 0)) == []
        assert metrics.reordered_frames == 2
        # Seq 0 fills the gap: everything drains in sequence order.
        out = transport.receive(1, RelFrame(0, "a", 0))
        assert out == [(1, "a"), (1, "b"), (1, "c")]

    def test_duplicates_dropped_but_still_acked(self):
        transport, api, metrics = make()
        transport.receive(1, RelFrame(0, "a", 0))
        assert transport.receive(1, RelFrame(0, "a", 0)) == []
        assert metrics.dup_frames_dropped == 1
        # Both receipts acked: a lost ack is repaired by the duplicate.
        acks = [payload for _dst, payload, _size in api.sent
                if isinstance(payload, RelAck)]
        assert len(acks) == 2
        assert all(ack.cumulative == 0 for ack in acks)

    def test_buffered_duplicate_also_dropped(self):
        transport, _api, metrics = make()
        transport.receive(1, RelFrame(3, "d", 0))
        transport.receive(1, RelFrame(3, "d", 0))
        assert metrics.dup_frames_dropped == 1

    def test_ack_reports_selective_gaps(self):
        transport, api, _metrics = make()
        transport.receive(1, RelFrame(0, "a", 0))
        transport.receive(1, RelFrame(2, "c", 0))
        ack = [payload for _dst, payload, _size in api.sent
               if isinstance(payload, RelAck)][-1]
        assert ack.cumulative == 0
        assert ack.sacked == (2,)

    def test_unframed_payload_passes_through(self):
        transport, _api, _metrics = make()
        assert transport.receive(1, "bare") == ((1, "bare"),)


class TestAcks:
    def test_cumulative_ack_clears_prefix(self):
        transport, _api, _metrics = make()
        for payload in "abc":
            transport.send(1, payload)
        transport.receive(1, RelAck(1, ()))
        assert transport.unacked_frames() == 1

    def test_selective_ack_clears_individual_frames(self):
        transport, _api, _metrics = make()
        for payload in "abc":
            transport.send(1, payload)
        transport.receive(1, RelAck(-1, (1,)))
        assert transport.unacked_frames() == 2

    def test_ack_for_unknown_channel_ignored(self):
        transport, _api, _metrics = make()
        transport.receive(1, RelAck(5, ()))  # nothing sent yet: no-op


class TestRetransmission:
    def test_no_retransmit_before_timeout(self):
        transport, api, metrics = make(rto=10)
        transport.send(1, "a")
        api.now = 9
        assert transport.poll(9) == 0
        assert metrics.retransmits == 0

    def test_retransmit_after_timeout(self):
        transport, api, metrics = make(rto=10)
        transport.send(1, "a")
        api.now = 10
        assert transport.poll(10) == 1
        assert metrics.retransmits == 1
        resent = frames_sent(api)
        assert resent[0].seq == resent[1].seq == 0

    def test_backoff_doubles_until_cap(self):
        transport, api, _metrics = make(rto=10)
        transport.send(1, "a")
        due = 10
        intervals = []
        for _attempt in range(6):
            api.now = due
            assert transport.poll(due) == 1
            nxt = transport.next_timer_tick()
            intervals.append(nxt - due)
            due = nxt
        assert intervals == [20, 40, 80, 80, 80, 80]  # cap = 8 * rto

    def test_ack_cancels_retransmission(self):
        transport, api, _metrics = make(rto=10)
        transport.send(1, "a")
        transport.receive(1, RelAck(0, ()))
        api.now = 50
        assert transport.poll(50) == 0
        assert transport.next_timer_tick() is None

    def test_next_timer_tracks_earliest_frame(self):
        transport, api, _metrics = make(rto=10)
        transport.send(1, "a")
        api.now = 5
        transport.send(1, "b")
        assert transport.next_timer_tick() == 10

    def test_auto_rto_from_latency(self):
        api = FakeApi()
        config = ClusterConfig(network_latency=6, retransmit_timeout=0)
        transport = ReliableTransport(api, config, MachineMetrics())
        transport.send(1, "a")
        assert transport.next_timer_tick() == 2 * 6 + 8


class TestEndToEnd:
    def test_lossy_channel_delivers_exactly_once_in_order(self):
        """Simulate a lossy wire by hand: drop the first copy of every
        third frame, deliver the rest out of order, run retransmission —
        the receiver still sees every payload once, in order."""
        sender, sender_api, _m = make(rto=5)
        receiver, receiver_api, _m2 = make(rto=5)
        payloads = ["m%d" % i for i in range(9)]
        for payload in payloads:
            sender.send(1, payload)
        wire = frames_sent(sender_api)
        delivered = []
        # First pass: lose every third frame, shuffle the rest.
        survivors = [f for i, f in enumerate(wire) if i % 3 != 0]
        for frame in reversed(survivors):
            delivered.extend(p for _src, p in receiver.receive(0, frame))
        # Feed the acks back, then retransmit what's still missing.
        for _dst, payload, _size in list(receiver_api.sent):
            if isinstance(payload, RelAck):
                sender.receive(1, payload)
        assert sender.unacked_frames() == 3
        sender_api.now = 5
        sender.poll(5)
        for frame in frames_sent(sender_api)[len(wire):]:
            delivered.extend(p for _src, p in receiver.receive(0, frame))
        assert delivered == payloads
