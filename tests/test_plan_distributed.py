"""Unit tests for step ii: the distributed plan with inspection steps."""

from repro.pgql import parse_and_validate
from repro.plan import (
    HopKind,
    VisitKind,
    build_distributed_plan,
    build_logical_plan,
)


def distributed(text, **kwargs):
    return build_distributed_plan(
        build_logical_plan(parse_and_validate(text), **kwargs)
    )


def shape(plan):
    return [
        (visit.kind.value, visit.var, visit.hop.kind.value)
        for visit in plan.visits
    ]


class TestPaperFigure2:
    def test_exact_stage_structure(self):
        """The paper's Figure 2 query must produce its exact stage list."""
        plan = distributed(
            "SELECT a, b.name WHERE (a)-[]->(b), (a)-[]->(c), "
            "a.id() < 17, a.type = b.type, b.type != c.type"
        )
        assert shape(plan) == [
            ("match", "a", "neighbor"),    # stage 0: match a, hop out nghbr
            ("match", "b", "vertex"),      # stage 1: match b, inspection: a
            ("inspect", "a", "neighbor"),  # stage 2: back at a, out nghbr
            ("match", "c", "output"),      # stage 3: match c, output
        ]


class TestInspectionInsertion:
    def test_no_inspection_when_chained(self):
        plan = distributed("SELECT a WHERE (a)-[]->(b)-[]->(c)")
        kinds = [visit.kind for visit in plan.visits]
        assert VisitKind.INSPECT not in kinds

    def test_inspection_for_branching(self):
        plan = distributed("SELECT a WHERE (a)-[]->(b), (a)-[]->(c)")
        kinds = [visit.kind for visit in plan.visits]
        assert VisitKind.INSPECT in kinds

    def test_last_hop_is_output(self):
        plan = distributed("SELECT a WHERE (a)-[]->(b)")
        assert plan.visits[-1].hop.kind is HopKind.OUTPUT


class TestEdgeChecks:
    def test_check_from_current_when_at_src(self):
        plan = distributed("SELECT a WHERE (a)-[]->(b), (b)-[]->(a)")
        # After matching b (current), the b->a check runs at b.
        check_hops = [
            visit.hop for visit in plan.visits
            if visit.hop.kind is HopKind.VERTEX and visit.hop.edge_req
        ]
        assert len(check_hops) == 1
        assert check_hops[0].edge_req.orientation == "current_to_target"

    def test_check_from_dst_via_in_adjacency(self):
        plan = distributed("SELECT a WHERE (a)-[]->(b), (a)-[]->(b)")
        # Current is b; second a->b edge checks via b's in-adjacency.
        check_hops = [
            visit.hop for visit in plan.visits
            if visit.hop.kind is HopKind.VERTEX and visit.hop.edge_req
        ]
        assert len(check_hops) == 1
        assert check_hops[0].edge_req.orientation == "target_to_current"


class TestFilterSplit:
    def test_edge_only_conjunct_is_hop_filter(self):
        plan = distributed("SELECT a WHERE (a)-[e]->(b), e.w > 2")
        hop = plan.visits[0].hop
        assert len(hop.edge_filters) == 1
        assert not plan.visits[1].filters

    def test_target_conjunct_is_visit_filter(self):
        plan = distributed("SELECT a WHERE (a)-[e]->(b), e.w > b.x")
        hop = plan.visits[0].hop
        assert not hop.edge_filters
        assert len(plan.visits[1].filters) == 1

    def test_source_and_edge_conjunct_is_hop_filter(self):
        plan = distributed("SELECT a WHERE (a)-[e]->(b), e.w > a.x")
        assert len(plan.visits[0].hop.edge_filters) == 1


class TestCartesian:
    def test_all_vertices_hop(self):
        plan = distributed("SELECT a, b WHERE (a), (b)")
        assert plan.visits[0].hop.kind is HopKind.ALL_VERTICES
        assert plan.visits[1].kind is VisitKind.MATCH


class TestCommonNeighborVisits:
    def test_collect_probe_match_sequence(self):
        plan = distributed(
            "SELECT a WHERE (a)-[]->(c)<-[]-(b)", use_common_neighbors=True
        )
        hops = [visit.hop.kind for visit in plan.visits]
        assert HopKind.CN_COLLECT in hops
        assert HopKind.CN_PROBE in hops
        collect_index = hops.index(HopKind.CN_COLLECT)
        assert plan.visits[collect_index + 1].kind is VisitKind.CN_PROBE
        assert plan.visits[collect_index + 2].kind is VisitKind.MATCH
        assert plan.visits[collect_index + 2].var == "c"

    def test_single_edge_filters_attach_to_hops(self):
        plan = distributed(
            "SELECT a WHERE (a)-[e1]->(c)<-[e2]-(b), e1.w > 1, e2.w > 2, "
            "e1.w != e2.w",
            use_common_neighbors=True,
        )
        collect = next(
            visit.hop for visit in plan.visits
            if visit.hop.kind is HopKind.CN_COLLECT
        )
        probe = next(
            visit.hop for visit in plan.visits
            if visit.hop.kind is HopKind.CN_PROBE
        )
        match = plan.visits[-1]
        assert len(collect.edge_filters) == 1
        assert len(probe.edge_filters) == 1
        assert len(match.filters) == 1  # the two-edge conjunct
