"""Property-based tests for the graph substrate (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    DistributedGraph,
    EdgeBalancedRandomPartitioner,
    GraphBuilder,
    graph_from_dict,
    graph_to_dict,
)


@st.composite
def edge_lists(draw, max_vertices=12, max_edges=40):
    num_vertices = draw(st.integers(min_value=1, max_value=max_vertices))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=num_vertices - 1),
                st.integers(min_value=0, max_value=num_vertices - 1),
            ),
            max_size=max_edges,
        )
    )
    return num_vertices, edges


def build(num_vertices, edges):
    builder = GraphBuilder()
    builder.add_vertices(num_vertices)
    for src, dst in edges:
        builder.add_edge(src, dst)
    return builder.build()


class TestCsrInvariants:
    @given(edge_lists())
    @settings(max_examples=80, deadline=None)
    def test_edge_multiset_preserved(self, data):
        num_vertices, edges = data
        graph = build(num_vertices, edges)
        assert graph.num_edges == len(edges)
        out_pairs = sorted(
            (vertex, int(dst))
            for vertex in graph.vertices()
            for dst in graph.out_neighbors(vertex)
        )
        assert out_pairs == sorted(edges)

    @given(edge_lists())
    @settings(max_examples=80, deadline=None)
    def test_in_out_are_transposes(self, data):
        num_vertices, edges = data
        graph = build(num_vertices, edges)
        in_pairs = sorted(
            (int(src), vertex)
            for vertex in graph.vertices()
            for src in graph.in_neighbors(vertex)
        )
        assert in_pairs == sorted(edges)

    @given(edge_lists())
    @settings(max_examples=80, deadline=None)
    def test_degree_sums(self, data):
        num_vertices, edges = data
        graph = build(num_vertices, edges)
        assert sum(graph.out_degree(v) for v in graph.vertices()) == \
            len(edges)
        assert sum(graph.in_degree(v) for v in graph.vertices()) == \
            len(edges)

    @given(edge_lists())
    @settings(max_examples=80, deadline=None)
    def test_edge_ids_consistent_across_directions(self, data):
        num_vertices, edges = data
        graph = build(num_vertices, edges)
        seen = {}
        for vertex in graph.vertices():
            dst, eids = graph.out_edges(vertex)
            for d, eid in zip(dst, eids):
                seen[int(eid)] = (vertex, int(d))
        for vertex in graph.vertices():
            src, eids = graph.in_edges(vertex)
            for s, eid in zip(src, eids):
                assert seen[int(eid)] == (int(s), vertex)
        for eid, endpoints in seen.items():
            assert graph.edge_endpoints(eid) == endpoints

    @given(edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_edges_between_matches_scan(self, data):
        num_vertices, edges = data
        graph = build(num_vertices, edges)
        for src in graph.vertices():
            for dst in graph.vertices():
                expected = sum(
                    1 for e_src, e_dst in edges
                    if (e_src, e_dst) == (src, dst)
                )
                assert len(graph.edges_between(src, dst)) == expected
                assert len(graph.in_edges_from(dst, src)) == expected


class TestPartitionInvariants:
    @given(edge_lists(), st.integers(min_value=1, max_value=5))
    @settings(max_examples=50, deadline=None)
    def test_partition_covers_exactly_once(self, data, machines):
        num_vertices, edges = data
        graph = build(num_vertices, edges)
        partition = EdgeBalancedRandomPartitioner(seed=0).partition(
            graph, machines
        )
        owners = partition.owners_array()
        assert len(owners) == num_vertices
        collected = np.concatenate(
            [partition.local_vertices(m) for m in range(machines)]
        ) if machines else np.array([])
        assert sorted(collected.tolist()) == list(range(num_vertices))

    @given(edge_lists(), st.integers(min_value=1, max_value=4))
    @settings(max_examples=30, deadline=None)
    def test_distributed_local_access_total(self, data, machines):
        num_vertices, edges = data
        graph = build(num_vertices, edges)
        dist = DistributedGraph.create(graph, machines)
        total = sum(
            dist.local(m).num_local_vertices for m in range(machines)
        )
        assert total == num_vertices


class TestSerializationRoundtrip:
    @given(edge_lists())
    @settings(max_examples=40, deadline=None)
    def test_json_roundtrip(self, data):
        num_vertices, edges = data
        graph = build(num_vertices, edges)
        rebuilt = graph_from_dict(graph_to_dict(graph))
        assert rebuilt.num_vertices == graph.num_vertices
        assert rebuilt.num_edges == graph.num_edges
        for vertex in graph.vertices():
            assert list(rebuilt.out_neighbors(vertex)) == \
                list(graph.out_neighbors(vertex))
