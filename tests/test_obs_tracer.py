"""Tests for the tracing/observability subsystem (repro.obs)."""

import json

import pytest

from repro import ClusterConfig, PlannerOptions, uniform_random_graph
from repro.graph import DistributedGraph, power_law_graph
from repro.obs import EVENT_KINDS, Tracer
from repro.runtime import PgxdAsyncEngine

QUERY = "SELECT a, b, c WHERE (a)-[]->(b)-[]->(c), a.value > 2000"


@pytest.fixture(scope="module")
def traced_result():
    graph = uniform_random_graph(200, 1_000, seed=2, num_types=4)
    engine = PgxdAsyncEngine(
        graph,
        ClusterConfig(num_machines=4, flow_control_window=1,
                      bulk_message_size=4),
    )
    return engine.query(QUERY, options=PlannerOptions(trace=True))


class TestTracerBasics:
    def test_trace_none_by_default(self, random_graph):
        engine = PgxdAsyncEngine(random_graph, ClusterConfig(num_machines=2))
        result = engine.query("SELECT a WHERE (a)-[]->(b)")
        assert result.trace is None

    def test_traced_query_yields_many_event_kinds(self, traced_result):
        kinds = traced_result.trace.kinds()
        assert kinds <= set(EVENT_KINDS)
        # The acceptance bar: at least 6 distinct typed events.
        assert len(kinds) >= 6
        for expected in ("tick", "worker_span", "message_send",
                         "message_deliver", "stage_completed", "result"):
            assert expected in kinds

    def test_cluster_config_flag_also_enables(self, random_graph):
        engine = PgxdAsyncEngine(
            random_graph, ClusterConfig(num_machines=2, trace=True)
        )
        result = engine.query("SELECT a WHERE (a)-[]->(b)")
        assert result.trace is not None
        assert len(result.trace) > 0

    def test_tracing_does_not_perturb_execution(self, random_graph):
        config = ClusterConfig(num_machines=3)
        query = "SELECT a, b WHERE (a)-[]->(b), a.value > b.value"
        plain = PgxdAsyncEngine(random_graph, config).query(query)
        traced = PgxdAsyncEngine(random_graph, config).query(
            query, options=PlannerOptions(trace=True)
        )
        assert traced.metrics.ticks == plain.metrics.ticks
        assert traced.metrics.total_ops == plain.metrics.total_ops
        assert sorted(traced.rows) == sorted(plain.rows)

    def test_event_ticks_nondecreasing(self, traced_result):
        ticks = [event.tick for event in traced_result.trace]
        assert ticks == sorted(ticks)

    def test_counts_and_events_of(self, traced_result):
        trace = traced_result.trace
        counts = trace.counts()
        assert sum(counts.values()) == len(trace)
        spans = trace.events_of("worker_span")
        assert spans and all(event.kind == "worker_span" for event in spans)

    def test_event_to_dict_and_repr(self, traced_result):
        event = traced_result.trace.events_of("worker_span")[0]
        record = event.to_dict()
        assert record["kind"] == "worker_span"
        assert {"tick", "machine", "worker", "stage", "ops"} <= set(record)
        assert "WorkerSpan" in repr(event)

    def test_max_events_cap(self, random_graph):
        engine = PgxdAsyncEngine(
            random_graph,
            ClusterConfig(num_machines=2, trace=True, trace_max_events=50),
        )
        result = engine.query("SELECT a, b WHERE (a)-[]->(b)")
        assert len(result.trace) == 50
        assert result.trace.dropped > 0

    def test_flow_control_block_events_under_pressure(self, traced_result):
        kinds = traced_result.trace.kinds()
        assert "flow_block" in kinds
        assert "flow_unblock" in kinds
        blocks = traced_result.trace.events_of("flow_block")
        assert traced_result.metrics.flow_control_blocks == len(blocks)

    def test_stage_completed_once_per_machine_per_stage(self, traced_result):
        events = traced_result.trace.events_of("stage_completed")
        seen = {(event.machine, event.stage) for event in events}
        assert len(seen) == len(events)
        meta = traced_result.trace.meta
        assert len(events) == meta["num_machines"] * meta["num_stages"]

    def test_ghost_prune_events(self):
        graph = power_law_graph(200, 1_600, seed=19, num_types=4)
        dist = DistributedGraph.create(graph, 3, ghost_threshold=50)
        engine = PgxdAsyncEngine(dist, ClusterConfig(num_machines=3))
        result = engine.query(
            "SELECT a, b WHERE (a)-[]->(b WITH type = 1)",
            options=PlannerOptions(trace=True),
        )
        prunes = result.trace.events_of("ghost_prune")
        assert len(prunes) == result.metrics.ghost_prunes
        assert result.metrics.ghost_prunes > 0


class TestProfile:
    def test_stage_stats_shape(self, traced_result):
        profile = traced_result.trace.profile()
        assert profile.num_stages == traced_result.plan.num_stages
        for stage in range(profile.num_stages):
            stats = profile.stage_stats(stage)
            assert stats["blocked_ticks"] >= 0
            assert stats["completed_at"] is not None

    def test_first_result_and_utilization(self, traced_result):
        profile = traced_result.trace.profile()
        assert profile.first_result_tick is not None
        assert profile.first_result_tick <= traced_result.metrics.ticks
        for machine in range(traced_result.metrics.num_machines):
            utilization = profile.worker_utilization(machine)
            assert 0.0 <= utilization <= 1.0
            assert profile.peak_buffered(machine) >= 0

    def test_machine_series_tracks_every_machine(self, traced_result):
        profile = traced_result.trace.profile()
        assert set(profile.machine_series) == set(
            range(traced_result.metrics.num_machines)
        )
        for series in profile.machine_series.values():
            assert len(series["ticks"]) == len(series["ops"])
            assert len(series["ticks"]) == len(series["buffered"])

    def test_summary_text(self, traced_result):
        text = traced_result.trace.profile().summary()
        assert "time to first result" in text
        assert "machine 0" in text
        assert "stage 0" in text


class TestExport:
    def test_chrome_trace_valid_json(self, traced_result):
        payload = traced_result.trace.to_chrome_json()
        obj = json.loads(payload)
        assert isinstance(obj["traceEvents"], list)
        assert obj["traceEvents"], "chrome trace must not be empty"
        phases = {event["ph"] for event in obj["traceEvents"]}
        assert {"X", "C", "i", "M"} <= phases
        for event in obj["traceEvents"]:
            assert "pid" in event and "name" in event

    def test_chrome_trace_writes_file(self, traced_result, tmp_path):
        path = tmp_path / "trace.json"
        traced_result.trace.to_chrome_json(path)
        obj = json.loads(path.read_text())
        assert obj["otherData"]["num_machines"] == 4

    def test_timeline_renders_every_machine(self, traced_result):
        text = traced_result.trace.timeline(width=40)
        for machine in range(traced_result.metrics.num_machines):
            assert "m%d" % machine in text

    def test_timeline_empty_trace(self):
        assert Tracer().timeline() == "(empty trace)"


class TestExplainAnalyzeWithTrace:
    def test_trace_columns_present(self, traced_result):
        text = traced_result.explain_analyze()
        assert "blocked_ticks=" in text
        assert "completed_at=" in text
        assert "time to first result" in text

    def test_plain_result_keeps_old_format(self, random_graph):
        engine = PgxdAsyncEngine(random_graph, ClusterConfig(num_machines=2))
        text = engine.query("SELECT a WHERE (a)-[]->(b)").explain_analyze()
        assert "visits=" in text
        assert "blocked_ticks=" not in text


class TestUnionTrace:
    def test_union_merges_expansion_traces(self, random_graph):
        engine = PgxdAsyncEngine(random_graph, ClusterConfig(num_machines=2))
        result = engine.query(
            "SELECT a, b WHERE (a)-/{1,3}/->(b)",
            options=PlannerOptions(trace=True),
        )
        trace = result.trace
        assert trace is not None
        assert len(trace.kinds()) >= 5
        # The merged timeline spans the summed expansion durations.
        assert trace.meta["ticks"] == result.metrics.ticks
        ticks = [event.tick for event in trace]
        assert ticks == sorted(ticks)
