"""Unit tests for ResultSet and the aggregation state machinery."""

import pytest

from repro.pgql.ast import AggregateFunc
from repro.runtime.aggregation import AggregateState
from repro.runtime.results import ResultSet


class TestResultSet:
    def make(self):
        return ResultSet(["a", "b"], [(1, "x"), (2, "y"), (3, "x")])

    def test_len_iter_getitem(self):
        rs = self.make()
        assert len(rs) == 3
        assert list(rs)[0] == (1, "x")
        assert rs[1] == (2, "y")

    def test_column(self):
        rs = self.make()
        assert rs.column("b") == ["x", "y", "x"]
        with pytest.raises(ValueError):
            rs.column("missing")

    def test_to_dicts(self):
        rs = self.make()
        assert rs.to_dicts()[0] == {"a": 1, "b": "x"}

    def test_sorted_rows(self):
        rs = ResultSet(["a"], [(3,), (1,), (2,)])
        assert rs.sorted_rows() == [(1,), (2,), (3,)]

    def test_pretty_truncates(self):
        rs = ResultSet(["a"], [(i,) for i in range(30)])
        text = rs.pretty(limit=5)
        assert "more rows" in text
        assert text.count("\n") < 10


class TestAggregateState:
    def test_count(self):
        state = AggregateState(AggregateFunc.COUNT, False)
        for value in (5, 5, 7):
            state.update(value)
        assert state.result() == 3

    def test_count_distinct(self):
        state = AggregateState(AggregateFunc.COUNT, True)
        for value in (5, 5, 7):
            state.update(value)
        assert state.result() == 2

    def test_sum_avg(self):
        sum_state = AggregateState(AggregateFunc.SUM, False)
        avg_state = AggregateState(AggregateFunc.AVG, False)
        for value in (1, 2, 3):
            sum_state.update(value)
            avg_state.update(value)
        assert sum_state.result() == 6
        assert avg_state.result() == 2.0

    def test_sum_distinct(self):
        state = AggregateState(AggregateFunc.SUM, True)
        for value in (4, 4, 2):
            state.update(value)
        assert state.result() == 6

    def test_min_max(self):
        min_state = AggregateState(AggregateFunc.MIN, False)
        max_state = AggregateState(AggregateFunc.MAX, False)
        for value in (5, -1, 3):
            min_state.update(value)
            max_state.update(value)
        assert min_state.result() == -1
        assert max_state.result() == 5

    def test_empty_min_is_none(self):
        assert AggregateState(AggregateFunc.MIN, False).result() is None

    def test_empty_avg_is_none(self):
        assert AggregateState(AggregateFunc.AVG, False).result() is None

    def test_empty_sum_is_zero(self):
        assert AggregateState(AggregateFunc.SUM, False).result() == 0

    def test_strings(self):
        state = AggregateState(AggregateFunc.MAX, False)
        for value in ("apple", "pear", "fig"):
            state.update(value)
        assert state.result() == "pear"
