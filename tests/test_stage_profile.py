"""Tests for the per-stage runtime profile (EXPLAIN ANALYZE)."""

from repro import ClusterConfig, run_query, uniform_random_graph


class TestStageProfile:
    def query(self, machines=3):
        graph = uniform_random_graph(100, 500, seed=2, num_types=4)
        return graph, run_query(
            graph,
            "SELECT a, b WHERE (a WITH type = 1)-[]->(b WITH value > 5000)",
            ClusterConfig(num_machines=machines),
        )

    def test_profile_shape(self):
        _graph, result = self.query()
        assert len(result.stage_profile) == result.plan.num_stages
        for entry in result.stage_profile:
            assert set(entry) == {"visits", "passes", "remote_in"}

    def test_root_visits_every_vertex(self):
        graph, result = self.query()
        root = result.stage_profile[0]
        assert root["visits"] == graph.num_vertices
        assert root["remote_in"] == 0  # bootstrap is machine-local

    def test_passes_bounded_by_visits(self):
        _graph, result = self.query()
        for entry in result.stage_profile:
            assert 0 <= entry["passes"] <= entry["visits"]

    def test_final_passes_equal_results(self):
        _graph, result = self.query()
        assert result.stage_profile[-1]["passes"] == len(result.rows)

    def test_single_machine_ships_nothing(self):
        _graph, result = self.query(machines=1)
        assert all(
            entry["remote_in"] == 0 for entry in result.stage_profile
        )

    def test_explain_analyze_text(self):
        _graph, result = self.query()
        text = result.explain_analyze()
        assert text.count("Stage") == result.plan.num_stages
        assert "visits=" in text and "remote_in=" in text

    def test_filter_selectivity_visible(self):
        graph, result = self.query()
        root = result.stage_profile[0]
        expected = sum(
            1 for v in range(graph.num_vertices)
            if graph.vertex_prop("type", v) == 1
        )
        assert root["passes"] == expected
