"""Integration tests for aggregation, grouping, ordering, limits (§5)."""

import pytest

from repro import ClusterConfig, run_query


def run(graph, query, machines=3):
    return run_query(
        graph, query, ClusterConfig(num_machines=machines),
        debug_checks=True,
    )


class TestAggregates:
    def test_count_star(self, social_graph):
        result = run(social_graph, "SELECT COUNT(*) WHERE (a)-[:friend]->(b)")
        assert result.rows == [(3,)]

    def test_sum_avg_min_max(self, social_graph):
        result = run(
            social_graph,
            "SELECT SUM(a.age), AVG(a.age), MIN(a.age), MAX(a.age) "
            "WHERE (a:person)",
        )
        assert result.rows == [(89, 89 / 4, 16, 31)]

    def test_count_distinct(self, social_graph):
        # Buyers: 0, 1, 3 -> three distinct, but 0 and 1 both bought laptop.
        result = run(
            social_graph,
            "SELECT COUNT(DISTINCT i) WHERE (a)-[:bought]->(i)",
        )
        assert result.rows == [(2,)]

    def test_empty_match_yields_no_groups(self, social_graph):
        result = run(
            social_graph, "SELECT COUNT(*) WHERE (a WITH age > 999)"
        )
        assert result.rows == []

    def test_aggregate_arithmetic(self, social_graph):
        result = run(
            social_graph,
            "SELECT SUM(a.age) / COUNT(*) WHERE (a:person)",
        )
        assert result.rows == [(89 / 4,)]


class TestGroupBy:
    def test_group_counts(self, social_graph):
        result = run(
            social_graph,
            "SELECT a.label() AS kind, COUNT(*) WHERE (a) "
            "GROUP BY a.label() ORDER BY kind",
        )
        assert result.rows == [("item", 2), ("person", 4)]

    def test_group_by_expression(self, social_graph):
        result = run(
            social_graph,
            "SELECT a.age - a.age % 10 AS decade, COUNT(*) WHERE (a:person) "
            "GROUP BY a.age - a.age % 10 ORDER BY decade",
        )
        assert result.rows == [(10, 2), (20, 1), (30, 1)]

    def test_having(self, social_graph):
        result = run(
            social_graph,
            "SELECT i.name, COUNT(*) WHERE (a)-[:bought]->(i) "
            "GROUP BY i.name HAVING COUNT(*) > 1",
        )
        assert result.rows == [("laptop", 2)]


class TestOrderLimit:
    def test_order_by_asc_desc(self, social_graph):
        result = run(
            social_graph,
            "SELECT a.name, a.age WHERE (a:person) ORDER BY a.age DESC",
        )
        ages = [row[1] for row in result.rows]
        assert ages == sorted(ages, reverse=True)

    def test_multi_key_order(self, social_graph):
        result = run(
            social_graph,
            "SELECT a.label(), a.name WHERE (a) "
            "ORDER BY a.label(), a.name DESC",
        )
        labels = [row[0] for row in result.rows]
        assert labels == sorted(labels)
        item_names = [row[1] for row in result.rows if row[0] == "item"]
        assert item_names == sorted(item_names, reverse=True)

    def test_limit(self, social_graph):
        result = run(
            social_graph,
            "SELECT a WHERE (a) ORDER BY a.age LIMIT 2",
        )
        assert len(result.rows) == 2

    def test_limit_zero(self, social_graph):
        result = run(social_graph, "SELECT a WHERE (a) LIMIT 0")
        assert result.rows == []

    def test_order_by_alias(self, social_graph):
        result = run(
            social_graph,
            "SELECT a.age * 2 AS dbl WHERE (a:person) ORDER BY dbl",
        )
        values = [row[0] for row in result.rows]
        assert values == sorted(values)


class TestAggregationMatchesManualComputation:
    def test_group_sums(self, random_graph):
        result = run(
            random_graph,
            "SELECT a.type, SUM(b.value) WHERE (a)-[]->(b) "
            "GROUP BY a.type ORDER BY a.type",
            machines=4,
        )
        expected = {}
        for edge in range(random_graph.num_edges):
            src, dst = random_graph.edge_endpoints(edge)
            key = random_graph.vertex_prop("type", src)
            expected[key] = expected.get(key, 0) + \
                random_graph.vertex_prop("value", dst)
        assert result.rows == [
            (key, expected[key]) for key in sorted(expected)
        ]

    @pytest.mark.parametrize("machines", [1, 2, 5])
    def test_aggregation_independent_of_cluster_size(self, random_graph,
                                                     machines):
        query = (
            "SELECT COUNT(*), AVG(a.value) WHERE (a)-[]->(b), b.type = 1"
        )
        result = run(random_graph, query, machines=machines)
        reference = run(random_graph, query, machines=1)
        assert result.rows == reference.rows
