"""Tests for the PGX.D-style BSP analytics engine and algorithms.

Cross-checked against networkx where the models coincide (SSSP, WCC,
triangle counting) and against an independent numpy power iteration for
PageRank (networkx collapses parallel edges, our multigraph model does
not).
"""

import networkx as nx
import numpy as np
import pytest

from repro import ClusterConfig, uniform_random_graph
from repro.analytics import (
    BspEngine,
    DegreeCentrality,
    PageRank,
    SingleSourceShortestPaths,
    TriangleCount,
    VertexProgram,
    WeaklyConnectedComponents,
)
from repro.graph import GraphBuilder, chain_graph


@pytest.fixture(scope="module")
def graph():
    return uniform_random_graph(80, 400, seed=5)


@pytest.fixture(scope="module")
def nx_multigraph(graph):
    nxg = nx.MultiDiGraph()
    nxg.add_nodes_from(range(graph.num_vertices))
    for edge in range(graph.num_edges):
        src, dst = graph.edge_endpoints(edge)
        nxg.add_edge(src, dst)
    return nxg


def engine(graph, machines=4):
    return BspEngine(graph, ClusterConfig(num_machines=machines))


class TestPageRank:
    def reference(self, graph, damping, iterations):
        """Power iteration matching the vertex program's model exactly
        (multigraph edges count, dangling vertices self-loop)."""
        n = graph.num_vertices
        ranks = np.full(n, 1.0 / n)
        for _ in range(iterations):
            incoming = np.zeros(n)
            for vertex in range(n):
                degree = graph.out_degree(vertex)
                if degree == 0:
                    incoming[vertex] += ranks[vertex]
                    continue
                share = ranks[vertex] / degree
                for target in graph.out_neighbors(vertex):
                    incoming[int(target)] += share
            ranks = (1.0 - damping) / n + damping * incoming
        return ranks

    def test_matches_power_iteration(self, graph):
        result = engine(graph).run(PageRank(iterations=15))
        expected = self.reference(graph, 0.85, 15)
        for vertex in range(graph.num_vertices):
            assert result.values[vertex] == pytest.approx(
                expected[vertex], abs=1e-9
            )

    def test_mass_conserved(self, graph):
        result = engine(graph).run(PageRank(iterations=10))
        assert sum(result.values.values()) == pytest.approx(1.0, abs=1e-9)

    def test_machine_count_invariant(self, graph):
        one = engine(graph, 1).run(PageRank(iterations=8))
        many = engine(graph, 6).run(PageRank(iterations=8))
        for vertex in range(graph.num_vertices):
            assert one.values[vertex] == pytest.approx(
                many.values[vertex], abs=1e-12
            )

    def test_early_stop_on_tolerance(self, graph):
        result = engine(graph).run(
            PageRank(iterations=100, tolerance=1e-3)
        )
        assert result.supersteps < 100


class TestSssp:
    def test_matches_networkx_unweighted(self, graph, nx_multigraph):
        result = engine(graph).run(SingleSourceShortestPaths(0))
        expected = nx.single_source_shortest_path_length(nx_multigraph, 0)
        for vertex in range(graph.num_vertices):
            assert result.values[vertex] == expected.get(vertex,
                                                         float("inf"))

    def test_weighted(self):
        builder = GraphBuilder()
        for _ in range(4):
            builder.add_vertex()
        builder.add_edge(0, 1, w=1.0)
        builder.add_edge(1, 2, w=1.0)
        builder.add_edge(0, 2, w=5.0)
        builder.add_edge(2, 3, w=1.0)
        graph = builder.build()
        result = engine(graph, 2).run(
            SingleSourceShortestPaths(0, weight_prop="w")
        )
        assert result.values == {0: 0.0, 1: 1.0, 2: 2.0, 3: 3.0}

    def test_unreachable_is_inf(self):
        builder = GraphBuilder()
        builder.add_vertices(3)
        builder.add_edge(0, 1)
        graph = builder.build()
        result = engine(graph, 2).run(SingleSourceShortestPaths(0))
        assert result.values[2] == float("inf")

    def test_chain_supersteps_track_diameter(self):
        graph = chain_graph(12)
        result = engine(graph, 3).run(SingleSourceShortestPaths(0))
        assert result.values[11] == 11
        assert result.supersteps >= 11


class TestWcc:
    def test_matches_networkx(self, graph, nx_multigraph):
        result = engine(graph).run(WeaklyConnectedComponents())
        for component in nx.weakly_connected_components(nx_multigraph):
            labels = {result.values[vertex] for vertex in component}
            assert labels == {min(component)}

    def test_disconnected(self):
        builder = GraphBuilder()
        builder.add_vertices(6)
        builder.add_edge(0, 1)
        builder.add_edge(1, 2)
        builder.add_edge(4, 3)
        graph = builder.build()
        result = engine(graph, 3).run(WeaklyConnectedComponents())
        assert result.values[0] == result.values[1] == result.values[2] == 0
        assert result.values[3] == result.values[4] == 3
        assert result.values[5] == 5


class TestTriangles:
    def test_matches_networkx(self, graph, nx_multigraph):
        result = engine(graph).run(TriangleCount())
        simple = nx.Graph()
        simple.add_nodes_from(range(graph.num_vertices))
        for src, dst in nx_multigraph.edges():
            if src != dst:
                simple.add_edge(src, dst)
        expected = sum(nx.triangles(simple).values()) // 3
        assert sum(result.values.values()) == expected

    def test_known_triangle(self):
        builder = GraphBuilder()
        builder.add_vertices(4)
        builder.add_edge(0, 1)
        builder.add_edge(1, 2)
        builder.add_edge(2, 0)
        builder.add_edge(2, 3)
        graph = builder.build()
        result = engine(graph, 2).run(TriangleCount())
        assert sum(result.values.values()) == 1

    def test_machine_count_invariant(self, graph):
        few = engine(graph, 2).run(TriangleCount())
        many = engine(graph, 7).run(TriangleCount())
        assert sum(few.values.values()) == sum(many.values.values())


class TestKCore:
    def test_matches_networkx(self, graph, nx_multigraph):
        from repro.analytics import KCoreDecomposition

        simple = nx.Graph()
        simple.add_nodes_from(range(graph.num_vertices))
        for src, dst in nx_multigraph.edges():
            if src != dst:
                simple.add_edge(src, dst)
        expected = nx.core_number(simple)
        result = engine(graph).run(KCoreDecomposition())
        for vertex in range(graph.num_vertices):
            assert result.values[vertex] == expected[vertex]

    def test_clique_core(self):
        from repro.analytics import KCoreDecomposition
        from repro.graph import complete_graph

        graph = complete_graph(5)
        result = engine(graph, 2).run(KCoreDecomposition())
        assert all(value == 4 for value in result.values.values())

    def test_machine_count_invariant(self, graph):
        from repro.analytics import KCoreDecomposition

        few = engine(graph, 2).run(KCoreDecomposition())
        many = engine(graph, 6).run(KCoreDecomposition())
        assert few.values == many.values


class TestClusteringCoefficient:
    def test_matches_networkx(self, graph, nx_multigraph):
        from repro.analytics import LocalClusteringCoefficient

        simple = nx.Graph()
        simple.add_nodes_from(range(graph.num_vertices))
        for src, dst in nx_multigraph.edges():
            if src != dst:
                simple.add_edge(src, dst)
        expected = nx.clustering(simple)
        result = engine(graph).run(LocalClusteringCoefficient())
        for vertex in range(graph.num_vertices):
            assert result.values[vertex] == pytest.approx(expected[vertex])

    def test_triangle_is_fully_clustered(self):
        from repro.analytics import LocalClusteringCoefficient
        from repro.graph import GraphBuilder

        builder = GraphBuilder()
        builder.add_vertices(3)
        builder.add_edge(0, 1)
        builder.add_edge(1, 2)
        builder.add_edge(2, 0)
        graph = builder.build()
        result = engine(graph, 2).run(LocalClusteringCoefficient())
        assert all(
            value == pytest.approx(1.0) for value in result.values.values()
        )


class TestHits:
    def test_top_scores_track_networkx(self, graph, nx_multigraph):
        """Our alternating-normalization variant agrees with networkx on
        which vertices are the strongest hubs and authorities."""
        from repro.analytics import HITS

        result = engine(graph).run(HITS(iterations=30))
        directed = nx.DiGraph(nx_multigraph)
        nx_hubs, nx_auths = nx.hits(directed, max_iter=500)

        def top(values, k=5):
            return set(sorted(values, key=values.get, reverse=True)[:k])

        my_hubs = {v: result.values[v][0] for v in range(graph.num_vertices)}
        my_auths = {v: result.values[v][1] for v in range(graph.num_vertices)}
        assert len(top(my_hubs) & top(nx_hubs)) >= 4
        assert len(top(my_auths) & top(nx_auths)) >= 4

    def test_scores_nonnegative(self, graph):
        from repro.analytics import HITS

        result = engine(graph, 3).run(HITS(iterations=10))
        for hub, authority in result.values.values():
            assert hub >= 0.0
            assert authority >= 0.0


class TestFramework:
    def test_degree_program(self, graph):
        result = engine(graph).run(DegreeCentrality())
        for vertex in range(graph.num_vertices):
            assert result.values[vertex] == graph.out_degree(vertex)
        assert result.supersteps == 1

    def test_metrics_populated(self, graph):
        result = engine(graph).run(PageRank(iterations=5))
        assert result.metrics.ticks > 0
        assert result.metrics.work_messages > 0

    def test_single_machine_no_messages(self, graph):
        result = engine(graph, 1).run(PageRank(iterations=5))
        assert result.metrics.work_messages == 0

    def test_custom_program(self, graph):
        class SumNeighborTypes(VertexProgram):
            max_supersteps = 2

            def init(self, ctx, vertex):
                return 0

            def compute(self, ctx, vertex, state, messages):
                if ctx.superstep == 0:
                    my_type = ctx.vertex_prop("type")
                    for target in ctx.out_neighbors():
                        ctx.send(int(target), my_type)
                    ctx.vote_to_halt()
                    return 0
                ctx.vote_to_halt()
                return sum(messages)

        result = engine(graph).run(SumNeighborTypes())
        expected = {v: 0 for v in range(graph.num_vertices)}
        for edge in range(graph.num_edges):
            src, dst = graph.edge_endpoints(edge)
            expected[dst] += graph.vertex_prop("type", src)
        assert result.values == expected

    def test_aggregator_visible_next_superstep(self, graph):
        seen = []

        class Probe(VertexProgram):
            max_supersteps = 3

            def init(self, ctx, vertex):
                return 1

            def compute(self, ctx, vertex, state, messages):
                if vertex == 0:
                    seen.append((ctx.superstep, ctx.previous_aggregate))
                # Keep every vertex active for all three supersteps.
                ctx.send(vertex, 0)
                return 1

            def aggregate(self, state):
                return state

        engine(graph, 2).run(Probe())
        aggregates = dict(seen)
        assert aggregates.get(1) == graph.num_vertices
        assert aggregates.get(2) == graph.num_vertices
