"""Unit tests for PGQL semantic validation."""

import pytest

from repro.errors import PgqlValidationError
from repro.pgql import parse, parse_and_validate, validate
from repro.pgql.ast import Binary, PropRef


def ok(text):
    return parse_and_validate(text)


def bad(text):
    with pytest.raises(PgqlValidationError):
        parse_and_validate(text)


class TestVariableBinding:
    def test_select_unbound(self):
        bad("SELECT x WHERE (a)-[]->(b)")

    def test_constraint_unbound(self):
        bad("SELECT a WHERE (a), z.age > 1")

    def test_order_by_unbound(self):
        bad("SELECT a WHERE (a) ORDER BY q.age")

    def test_edge_var_is_bound(self):
        ok("SELECT e.since WHERE (a)-[e]->(b)")

    def test_duplicate_edge_var(self):
        bad("SELECT a WHERE (a)-[e]->(b)-[e]->(c)")

    def test_vertex_reuse_joins_paths(self):
        query = ok("SELECT a WHERE (a)-[]->(b), (b)-[]->(c)")
        assert query.vertex_vars() == ["a", "b", "c"]

    def test_name_shared_between_vertex_and_edge(self):
        bad("SELECT a WHERE (a)-[x]->(x)")


class TestAggregates:
    def test_no_aggregate_in_with(self):
        bad("SELECT a WHERE (a WITH COUNT(*) > 1)")

    def test_no_aggregate_in_constraint(self):
        bad("SELECT a WHERE (a), SUM(a.x) > 3")

    def test_group_by_coverage(self):
        bad("SELECT COUNT(*), a WHERE (a)-[]->(b)")
        ok("SELECT COUNT(*), a.type WHERE (a)-[]->(b) GROUP BY a.type")

    def test_implicit_global_group(self):
        ok("SELECT COUNT(*) WHERE (a)-[]->(b)")

    def test_nested_aggregates(self):
        bad("SELECT SUM(COUNT(*) + 1) WHERE (a) GROUP BY a.x")

    def test_having_requires_aggregation(self):
        bad("SELECT a WHERE (a) HAVING a.x > 1")
        ok("SELECT COUNT(*) WHERE (a) HAVING COUNT(*) > 1")


class TestClauses:
    def test_negative_limit(self):
        query = parse("SELECT a WHERE (a) LIMIT 3")
        query.limit = -1
        with pytest.raises(PgqlValidationError):
            validate(query)

    def test_empty_pattern(self):
        query = parse("SELECT a WHERE (a)")
        query.paths = []
        with pytest.raises(PgqlValidationError):
            validate(query)


class TestAliasResolution:
    def test_order_by_alias(self):
        query = ok(
            "SELECT a.age + 1 AS next_age WHERE (a) ORDER BY next_age"
        )
        expr = query.order_by[0].expr
        assert isinstance(expr, Binary)
        assert isinstance(expr.lhs, PropRef)

    def test_group_by_alias(self):
        query = ok(
            "SELECT a.type AS t, COUNT(*) WHERE (a)-[]->(b) GROUP BY t"
        )
        assert isinstance(query.group_by[0], PropRef)

    def test_alias_does_not_shadow_pattern_var(self):
        # "b" is a pattern variable: ORDER BY b keeps the VarRef meaning.
        query = ok("SELECT a.age AS b, b AS bb WHERE (a)-[]->(b) ORDER BY b")
        from repro.pgql.ast import VarRef

        assert isinstance(query.order_by[0].expr, VarRef)
