"""Unit tests for partitioners and the distributed graph view."""

import numpy as np
import pytest

from repro.errors import ClusterConfigError, RemoteAccessError
from repro.graph import (
    BlockPartitioner,
    DistributedGraph,
    EdgeBalancedRandomPartitioner,
    HashPartitioner,
    uniform_random_graph,
)


class TestPartitioners:
    def test_every_vertex_assigned(self, random_graph):
        for partitioner in (
            EdgeBalancedRandomPartitioner(seed=1),
            HashPartitioner(),
            BlockPartitioner(),
        ):
            partition = partitioner.partition(random_graph, 4)
            assert partition.num_vertices == random_graph.num_vertices
            owners = partition.owners_array()
            assert owners.min() >= 0
            assert owners.max() < 4
            counts = partition.vertex_counts()
            assert counts.sum() == random_graph.num_vertices

    def test_edge_balanced_is_balanced(self, random_graph):
        partition = EdgeBalancedRandomPartitioner(seed=7).partition(
            random_graph, 4
        )
        counts = partition.edge_counts(random_graph)
        # Greedy balancing should stay well within 2x of ideal.
        ideal = random_graph.num_edges / 4
        assert counts.max() <= 2 * ideal

    def test_edge_balanced_deterministic(self, random_graph):
        first = EdgeBalancedRandomPartitioner(seed=3).partition(
            random_graph, 4
        )
        second = EdgeBalancedRandomPartitioner(seed=3).partition(
            random_graph, 4
        )
        assert np.array_equal(first.owners_array(), second.owners_array())

    def test_hash_partitioner(self, random_graph):
        partition = HashPartitioner().partition(random_graph, 3)
        assert partition.owner(7) == 7 % 3

    def test_block_partitioner_contiguous(self, random_graph):
        partition = BlockPartitioner().partition(random_graph, 4)
        owners = partition.owners_array()
        assert all(owners[i] <= owners[i + 1] for i in range(len(owners) - 1))

    def test_rejects_zero_machines(self, random_graph):
        with pytest.raises(ClusterConfigError):
            HashPartitioner().partition(random_graph, 0)

    def test_local_vertices_partition_the_ids(self, random_graph):
        partition = EdgeBalancedRandomPartitioner().partition(random_graph, 5)
        seen = []
        for machine in range(5):
            seen.extend(int(v) for v in partition.local_vertices(machine))
        assert sorted(seen) == list(range(random_graph.num_vertices))


class TestDistributedGraph:
    def test_create_default_partitioner(self, random_graph):
        dist = DistributedGraph.create(random_graph, 4)
        assert dist.num_machines == 4
        assert dist.graph is random_graph

    def test_machine_count_mismatch(self, random_graph):
        partition = HashPartitioner().partition(random_graph, 2)
        other = uniform_random_graph(10, 20, seed=0)
        with pytest.raises(ValueError):
            DistributedGraph(other, partition)

    def test_local_access_allowed(self, random_graph):
        dist = DistributedGraph.create(random_graph, 3)
        local = dist.local(1)
        vertex = int(local.local_vertices()[0])
        assert local.is_local(vertex)
        local.vertex_prop("type", vertex)
        local.out_edges(vertex)
        local.in_edges(vertex)
        local.out_degree(vertex)
        local.in_degree(vertex)
        local.vertex_label(vertex)

    def test_remote_access_rejected(self, random_graph):
        dist = DistributedGraph.create(random_graph, 3)
        local = dist.local(0)
        remote_vertex = int(dist.local(1).local_vertices()[0])
        with pytest.raises(RemoteAccessError):
            local.vertex_prop("type", remote_vertex)
        with pytest.raises(RemoteAccessError):
            local.out_edges(remote_vertex)
        with pytest.raises(RemoteAccessError):
            local.edges_between(remote_vertex, 0)
        with pytest.raises(RemoteAccessError):
            local.in_edges_from(remote_vertex, 0)

    def test_ownership_is_global_knowledge(self, random_graph):
        dist = DistributedGraph.create(random_graph, 3)
        local = dist.local(0)
        for vertex in range(random_graph.num_vertices):
            assert local.owner(vertex) == dist.owner(vertex)

    def test_edge_data_is_shared(self, random_graph):
        dist = DistributedGraph.create(random_graph, 2)
        # Edge properties are replicated on both endpoints: no check.
        dist.local(0).edge_prop("weight", 0)
        dist.local(1).edge_prop("weight", 0)
