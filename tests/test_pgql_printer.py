"""Tests for the PGQL printer (AST -> text) and parse/print round trips."""

import pytest

from repro.pgql import parse, parse_and_validate
from repro.pgql.printer import expr_to_pgql, to_pgql

ROUND_TRIP_QUERIES = [
    "SELECT a, b WHERE (a WITH age > 18)-[:friend]->(b)",
    "SELECT p, b.when, i.id WHERE "
    "(p WITH age < 18) -[b:bought]-> (i WITH price > 1000)",
    "SELECT a, b.name WHERE (a)-[]->(b), (a)-[]->(c), "
    "a.id() < 17, a.type = b.type, b.type != c.type",
    "SELECT v WHERE (v WITH id() = 17)-[]->()",
    'SELECT person, band WHERE '
    '(person)-[:likes]->(song)-[:from]->(band), '
    'person.gender = "female", song.style = "rock"',
    "SELECT DISTINCT a, b WHERE (a)-/{1,3}/->(b) ORDER BY a, b DESC "
    "LIMIT 5",
    "SELECT COUNT(*), a.type WHERE (a:person)-[]->(b) GROUP BY a.type "
    "HAVING COUNT(*) > 2 ORDER BY COUNT(*) DESC",
    "SELECT a.age + 2 * 3 AS x WHERE (a), NOT (a.age = 4 OR a.age > 10)",
    "SELECT SUM(DISTINCT a.value) WHERE (a)<-[e:linked]-(b), "
    "e.weight > 0.5",
    "SELECT a WHERE (a)<-/:next{2,4}/-(b), a != b",
    'SELECT a WHERE (a WITH name = "it\'s \\"quoted\\"")',
]


class TestRoundTrip:
    @pytest.mark.parametrize("text", ROUND_TRIP_QUERIES)
    def test_print_parse_fixed_point(self, text):
        """print(parse(x)) reparses to the identical printed form."""
        once = to_pgql(parse(text))
        twice = to_pgql(parse(once))
        assert once == twice

    @pytest.mark.parametrize("text", ROUND_TRIP_QUERIES)
    def test_structure_preserved(self, text):
        original = parse(text)
        reparsed = parse(to_pgql(original))
        assert len(original.paths) == len(reparsed.paths)
        assert len(original.constraints) == len(reparsed.constraints)
        assert original.distinct == reparsed.distinct
        assert original.limit == reparsed.limit
        assert len(original.select_items) == len(reparsed.select_items)
        for a, b in zip(original.paths, reparsed.paths):
            assert len(a.edges) == len(b.edges)
            for ea, eb in zip(a.edges, b.edges):
                assert ea.label == eb.label
                assert ea.direction == eb.direction
                assert (ea.min_hops, ea.max_hops) == \
                    (eb.min_hops, eb.max_hops)

    def test_round_trip_equivalent_results(self, random_graph):
        """Printed queries return the same rows as the originals."""
        from repro import ClusterConfig, run_query

        queries = [
            "SELECT a, b WHERE (a WITH type = 1)-[]->(b), a.value > b.value",
            "SELECT DISTINCT a.type WHERE (a)-[]->(b)-[]->(c) ORDER BY a.type",
        ]
        for text in queries:
            printed = to_pgql(parse_and_validate(text))
            first = run_query(random_graph, text,
                              ClusterConfig(num_machines=2))
            second = run_query(random_graph, printed,
                               ClusterConfig(num_machines=2))
            assert first.rows == second.rows


class TestExpressionPrinting:
    def expr(self, text):
        return parse("SELECT a WHERE (a), %s" % text).constraints[0]

    def test_precedence_parentheses(self):
        expr = self.expr("(a.x + 1) * 2 = 4")
        assert expr_to_pgql(expr) == "(a.x + 1) * 2 = 4"

    def test_no_redundant_parentheses(self):
        expr = self.expr("a.x + 1 + 2 = 4")
        assert expr_to_pgql(expr) == "a.x + 1 + 2 = 4"

    def test_not_of_disjunction(self):
        expr = self.expr("NOT (a.x = 1 OR a.y = 2)")
        printed = expr_to_pgql(expr)
        assert printed == "NOT (a.x = 1 OR a.y = 2)"

    def test_unary_minus(self):
        expr = self.expr("a.x > -3")
        assert expr_to_pgql(expr) == "a.x > -3"

    def test_boolean_literals(self):
        assert expr_to_pgql(self.expr("a.flag = TRUE")) == "a.flag = TRUE"

    def test_string_escaping(self):
        expr = self.expr('a.name = "say \\"hi\\""')
        printed = expr_to_pgql(expr)
        reparsed = parse("SELECT a WHERE (a), %s" % printed).constraints[0]
        assert reparsed.rhs.value == 'say "hi"'

    def test_right_associativity_parenthesized(self):
        # a - (b - c) must keep its parentheses.
        expr = self.expr("a.x - (a.y - a.z) = 0")
        printed = expr_to_pgql(expr)
        assert "(a.y - a.z)" in printed
