"""Tests for PGX.D-style ghost nodes (replicated high-degree vertices).

The paper disables this PGX.D feature for its experiments; we implement
it as an optional substrate capability: vertices whose total degree
reaches the threshold have their properties and label readable from any
machine, letting the runtime pre-filter remote hops to them.
"""

import pytest

from repro import ClusterConfig
from repro.baselines import SharedMemoryEngine
from repro.errors import RemoteAccessError
from repro.graph import DistributedGraph, power_law_graph, star_graph
from repro.runtime import PgxdAsyncEngine


@pytest.fixture(scope="module")
def hub_graph():
    return power_law_graph(200, 1_600, seed=19, num_types=4)


class TestGhostSelection:
    def test_threshold_selects_hubs(self, hub_graph):
        dist = DistributedGraph.create(hub_graph, 3, ghost_threshold=50)
        assert 0 < dist.num_ghosts < hub_graph.num_vertices
        local = dist.local(0)
        for vertex in range(hub_graph.num_vertices):
            degree = hub_graph.out_degree(vertex) + hub_graph.in_degree(vertex)
            assert local.is_ghost(vertex) == (degree >= 50)

    def test_disabled_by_default(self, hub_graph):
        dist = DistributedGraph.create(hub_graph, 3)
        assert dist.num_ghosts == 0

    def test_ghost_props_readable_anywhere(self, hub_graph):
        dist = DistributedGraph.create(hub_graph, 3, ghost_threshold=50)
        local = dist.local(0)
        ghost = next(
            v for v in range(hub_graph.num_vertices)
            if local.is_ghost(v) and not local.is_local(v)
        )
        # Properties and label: allowed.
        local.vertex_prop("type", ghost)
        local.vertex_label(ghost)
        assert local.is_readable(ghost)
        # Adjacency: still owner-only.
        with pytest.raises(RemoteAccessError):
            local.out_edges(ghost)

    def test_non_ghost_still_protected(self, hub_graph):
        dist = DistributedGraph.create(hub_graph, 3, ghost_threshold=50)
        local = dist.local(0)
        remote = next(
            v for v in range(hub_graph.num_vertices)
            if not local.is_local(v) and not local.is_ghost(v)
        )
        with pytest.raises(RemoteAccessError):
            local.vertex_prop("type", remote)


class TestGhostPrefilter:
    QUERY = "SELECT a, b WHERE (a)-[]->(b WITH type = 1), a.value > 5000"

    def test_results_unchanged(self, hub_graph):
        config = ClusterConfig(num_machines=4)
        plain = PgxdAsyncEngine(
            DistributedGraph.create(hub_graph, 4), config
        ).query(self.QUERY)
        ghosted = PgxdAsyncEngine(
            DistributedGraph.create(hub_graph, 4, ghost_threshold=30),
            config,
        ).query(self.QUERY)
        reference = SharedMemoryEngine(hub_graph).query(self.QUERY)
        assert sorted(plain.rows) == sorted(reference.rows)
        assert sorted(ghosted.rows) == sorted(reference.rows)

    def test_prunes_reduce_traffic(self, hub_graph):
        config = ClusterConfig(num_machines=4)
        plain = PgxdAsyncEngine(
            DistributedGraph.create(hub_graph, 4), config
        ).query(self.QUERY)
        ghosted = PgxdAsyncEngine(
            DistributedGraph.create(hub_graph, 4, ghost_threshold=30),
            config,
        ).query(self.QUERY)
        assert ghosted.metrics.ghost_prunes > 0
        assert plain.metrics.ghost_prunes == 0
        assert ghosted.metrics.contexts_shipped < \
            plain.metrics.contexts_shipped

    def test_star_hub_fully_ghosted(self):
        graph = star_graph(100, direction="in")
        # Leaves all point at the hub; the hub gets ghosted and a filter
        # that rejects it prunes every remote message to it.
        builder_query = "SELECT l, h WHERE (l)-[]->(h WITH id() < 0)"
        config = ClusterConfig(num_machines=4)
        ghosted = PgxdAsyncEngine(
            DistributedGraph.create(graph, 4, ghost_threshold=50), config
        ).query(builder_query)
        assert ghosted.rows == []
        assert ghosted.metrics.work_messages == 0

    def test_isomorphism_with_ghosts(self, hub_graph):
        from repro.plan import MatchSemantics, PlannerOptions

        options = PlannerOptions(semantics=MatchSemantics.ISOMORPHISM)
        query = "SELECT a, b, c WHERE (a)-[]->(b)-[]->(c)"
        config = ClusterConfig(num_machines=3)
        plain = PgxdAsyncEngine(
            DistributedGraph.create(hub_graph, 3), config
        ).query(query, options)
        ghosted = PgxdAsyncEngine(
            DistributedGraph.create(hub_graph, 3, ghost_threshold=30),
            config,
        ).query(query, options)
        assert sorted(plain.rows) == sorted(ghosted.rows)
