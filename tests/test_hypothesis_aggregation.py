"""Property-based tests of the partial-aggregation machinery.

The engine merges per-machine :class:`GroupAccumulator` states; that is
only correct if accumulation is partition-invariant: splitting the rows
across any number of accumulators and merging must equal accumulating
everything in one.  Hypothesis drives that invariant across aggregate
functions, DISTINCT, and grouping.
"""

import operator

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pgql.ast import AggregateFunc
from repro.runtime.aggregation import AggregateState


def accumulate(func, distinct, values):
    state = AggregateState(func, distinct)
    for value in values:
        state.update(value)
    return state


def merged(func, distinct, partitions):
    total = AggregateState(func, distinct)
    for partition in partitions:
        total.merge(accumulate(func, distinct, partition))
    return total


values_strategy = st.lists(st.integers(min_value=-50, max_value=50),
                           max_size=40)
split_strategy = st.integers(min_value=1, max_value=5)


def partitions_of(values, pieces):
    chunks = [[] for _ in range(pieces)]
    for index, value in enumerate(values):
        chunks[index % pieces].append(value)
    return chunks


class TestMergeInvariance:
    @given(values=values_strategy, pieces=split_strategy,
           func=st.sampled_from(list(AggregateFunc)),
           distinct=st.booleans())
    @settings(max_examples=200, deadline=None)
    def test_partitioned_equals_whole(self, values, pieces, func, distinct):
        whole = accumulate(func, distinct, values)
        parts = merged(func, distinct, partitions_of(values, pieces))
        assert parts.result() == whole.result()

    @given(values=values_strategy, func=st.sampled_from(list(AggregateFunc)))
    @settings(max_examples=100, deadline=None)
    def test_merge_with_empty_is_identity(self, values, func):
        state = accumulate(func, False, values)
        before = state.result()
        state.merge(AggregateState(func, False))
        assert state.result() == before

    @given(
        left=values_strategy,
        right=values_strategy,
        func=st.sampled_from(
            [AggregateFunc.COUNT, AggregateFunc.SUM, AggregateFunc.MIN,
             AggregateFunc.MAX]
        ),
    )
    @settings(max_examples=100, deadline=None)
    def test_merge_is_commutative(self, left, right, func):
        ab = accumulate(func, False, left)
        ab.merge(accumulate(func, False, right))
        ba = accumulate(func, False, right)
        ba.merge(accumulate(func, False, left))
        assert ab.result() == ba.result()


class TestAgainstPython:
    @given(values=st.lists(st.integers(-100, 100), min_size=1, max_size=30))
    @settings(max_examples=100, deadline=None)
    def test_results_match_builtins(self, values):
        assert accumulate(AggregateFunc.COUNT, False, values).result() == \
            len(values)
        assert accumulate(AggregateFunc.SUM, False, values).result() == \
            sum(values)
        assert accumulate(AggregateFunc.MIN, False, values).result() == \
            min(values)
        assert accumulate(AggregateFunc.MAX, False, values).result() == \
            max(values)
        assert accumulate(AggregateFunc.AVG, False, values).result() == \
            sum(values) / len(values)

    @given(values=st.lists(st.integers(-20, 20), max_size=30))
    @settings(max_examples=100, deadline=None)
    def test_distinct_matches_set_semantics(self, values):
        unique = set(values)
        assert accumulate(AggregateFunc.COUNT, True, values).result() == \
            len(unique)
        assert accumulate(AggregateFunc.SUM, True, values).result() == \
            sum(unique)


class TestEndToEndPartitionInvariance:
    @given(machines=st.integers(min_value=1, max_value=6))
    @settings(max_examples=10, deadline=None)
    def test_cluster_size_never_changes_aggregates(self, machines):
        from repro import ClusterConfig, run_query, uniform_random_graph

        graph = uniform_random_graph(40, 160, seed=77)
        query = (
            "SELECT a.type, COUNT(*), SUM(b.value), AVG(b.value) "
            "WHERE (a)-[]->(b) GROUP BY a.type ORDER BY a.type"
        )
        result = run_query(
            graph, query, ClusterConfig(num_machines=machines)
        )
        reference = run_query(graph, query, ClusterConfig(num_machines=1))
        assert result.rows == reference.rows
