"""The cost model and cost-based plan chooser (`repro.plan.cost`)."""

import pytest

from repro import ClusterConfig, PlannerOptions, run_query
from repro.graph import GraphBuilder
from repro.pgql import parse_and_validate
from repro.plan import (
    CostModel,
    SchedulingPolicy,
    candidate_orders,
    choose_plan,
    plan_query,
)
from repro.workloads.skewed import skewed_music_graph, skewed_query_suite


@pytest.fixture(scope="module")
def skewed():
    return skewed_music_graph(seed=0)


@pytest.fixture(scope="module")
def chain_query():
    return parse_and_validate(
        "SELECT p, b, s WHERE (p:person)-[:fan_of]->(b:band)"
        "-[:recorded]->(s:song), b.name = 'band7'"
    )


@pytest.fixture(scope="module")
def cn_query():
    return parse_and_validate(
        "SELECT a, s, b WHERE (a:curator)-[:likes]->(s:song)"
        "<-[:likes]-(b:curator), a.name = 'c0', b.name = 'c7'"
    )


class TestCostModel:
    def test_variable_scores_rank_the_selective_anchor(
        self, skewed, chain_query
    ):
        scores = CostModel(skewed).variable_scores(chain_query)
        assert set(scores) == {"p", "b", "s"}
        # The filtered band variable is by far the cheapest anchor; the
        # unfiltered person population is the worst.
        assert scores["b"] < scores["s"] < scores["p"]

    def test_estimate_prefers_selective_first(self, skewed, chain_query):
        model = CostModel(skewed)
        naive = model.estimate(chain_query, ("p", "b", "s"))
        reordered = model.estimate(chain_query, ("b", "s", "p"))
        assert reordered.cost < naive.cost
        assert reordered.rows > 0

    def test_estimate_charges_messages(self, skewed, chain_query):
        estimate = CostModel(skewed).estimate(chain_query, ("p", "b", "s"))
        assert estimate.messages > 0
        assert estimate.cost > estimate.work  # message weight applies


class TestCandidateOrders:
    def test_orders_are_connected_prefixes(self, skewed, chain_query):
        orders = candidate_orders(chain_query, skewed)
        assert ("p", "b", "s") in orders
        assert ("b", "p", "s") in orders
        # A prefix that needs a cartesian restart is never enumerated.
        assert ("p", "s", "b") not in orders

    def test_enumeration_covers_all_rotations(self, skewed, cn_query):
        orders = candidate_orders(cn_query, skewed)
        starts = {order[0] for order in orders}
        assert starts == {"a", "s", "b"}


class TestChoosePlan:
    def test_reorders_naive_bad_chain(self, skewed, chain_query):
        choice = choose_plan(chain_query, skewed)
        assert choice.policy == "cost"
        assert choice.order[0] != "p"  # not the fat end
        assert choice.candidates_considered > 1
        assert choice.alternatives  # at least one rejected alternative
        best_rejected = choice.alternatives[0]
        assert best_rejected.estimate.cost >= choice.chosen.estimate.cost

    def test_auto_enables_common_neighbors(self, skewed, cn_query):
        choice = choose_plan(cn_query, skewed)
        assert choice.use_common_neighbors
        assert choice.auto_common_neighbors

    def test_force_off_is_respected(self, skewed, cn_query):
        choice = choose_plan(cn_query, skewed,
                             force_common_neighbors=False)
        assert not choice.use_common_neighbors
        assert not choice.auto_common_neighbors

    def test_force_on_is_marked_forced(self, skewed, chain_query):
        choice = choose_plan(chain_query, skewed,
                             force_common_neighbors=True)
        assert not choice.auto_common_neighbors

    def test_describe_is_the_explain_surface(self, skewed, cn_query):
        text = choose_plan(cn_query, skewed).describe()
        assert "planner: policy=cost" in text
        assert "est. cost=" in text
        assert "rejected:" in text
        assert "scores:" in text
        assert "common-neighbors on (auto)" in text

    def test_deterministic(self, skewed, chain_query):
        first = choose_plan(chain_query, skewed)
        second = choose_plan(chain_query, skewed)
        assert first.order == second.order
        assert first.chosen.estimate.cost == second.chosen.estimate.cost


class TestEnginePolicyWiring:
    def test_plan_query_attaches_choice(self, skewed):
        query = parse_and_validate(
            "SELECT p, b WHERE (p:person)-[:fan_of]->(b:band), "
            "b.name = 'band7'"
        )
        options = PlannerOptions(scheduling=SchedulingPolicy.COST)
        plan = plan_query(query, skewed, options)
        assert plan.choice is not None
        assert plan.choice.policy == "cost"
        assert "planner: policy=cost" in plan.describe()

    def test_appearance_policy_unchanged(self, skewed):
        query = parse_and_validate(
            "SELECT p, b WHERE (p:person)-[:fan_of]->(b:band)"
        )
        plan = plan_query(query, skewed, PlannerOptions())
        assert plan.choice is None

    def test_cost_policy_returns_identical_rows(self, skewed):
        config = ClusterConfig(num_machines=3, seed=0)
        cost = PlannerOptions(scheduling=SchedulingPolicy.COST)
        naive = PlannerOptions()
        for query in skewed_query_suite(seed=0):
            expected = sorted(run_query(skewed, query, config, naive).rows)
            got = sorted(run_query(skewed, query, config, cost).rows)
            assert got == expected, query

    def test_cost_policy_does_less_work_on_the_suite(self, skewed):
        config = ClusterConfig(num_machines=3, seed=0)
        cost = PlannerOptions(scheduling=SchedulingPolicy.COST)
        naive = PlannerOptions()
        cost_ops = naive_ops = 0
        for query in skewed_query_suite(seed=0):
            cost_ops += run_query(skewed, query, config,
                                  cost).metrics.total_ops
            naive_ops += run_query(skewed, query, config,
                                   naive).metrics.total_ops
        assert cost_ops < naive_ops
