"""Tests for the worker's budget-debt accounting.

An indivisible micro-operation may overshoot the per-tick budget; the
overshoot must be repaid before new work so the long-run rate never
exceeds ``ops_per_tick`` — otherwise simulated machines would get
"faster" whenever stage costs exceed the tick quantum, distorting every
baseline comparison.
"""

from repro import ClusterConfig, run_query, uniform_random_graph


class TestDebtRepayment:
    def test_long_run_rate_bounded(self):
        """Total ops never exceed machine-ticks x workers x ops_per_tick."""
        graph = uniform_random_graph(120, 720, seed=15)
        # Many filter conjuncts make single operations cost ~6 ops while
        # the budget is only 2 — maximal overshoot pressure.
        query = (
            "SELECT a, b WHERE (a)-[]->(b), a.value > 1, a.value < 9999, "
            "b.value > 1, b.value < 9999, a.type >= 0"
        )
        config = ClusterConfig(
            num_machines=2, workers_per_machine=2, ops_per_tick=2
        )
        result = run_query(graph, query, config)
        capacity = (
            result.metrics.ticks
            * config.num_machines
            * config.workers_per_machine
            * config.ops_per_tick
        )
        assert result.metrics.total_ops <= capacity

    def test_results_identical_across_budgets(self):
        graph = uniform_random_graph(60, 300, seed=16)
        query = "SELECT a, b WHERE (a)-[]->(b), a.type = b.type"
        reference = None
        for ops_per_tick in (1, 3, 64):
            config = ClusterConfig(
                num_machines=3, ops_per_tick=ops_per_tick
            )
            rows = sorted(run_query(graph, query, config).rows)
            if reference is None:
                reference = rows
            assert rows == reference

    def test_smaller_budget_means_more_ticks(self):
        graph = uniform_random_graph(100, 600, seed=17)
        query = "SELECT a, b, c WHERE (a)-[]->(b)-[]->(c)"
        fast = run_query(
            graph, query,
            ClusterConfig(num_machines=2, ops_per_tick=64),
        )
        slow = run_query(
            graph, query,
            ClusterConfig(num_machines=2, ops_per_tick=2),
        )
        assert slow.metrics.ticks > 4 * fast.metrics.ticks
        assert sorted(slow.rows) == sorted(fast.rows)
