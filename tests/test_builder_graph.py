"""Unit tests for GraphBuilder and the CSR PropertyGraph."""

import pytest

from repro.errors import GraphError, InvalidEdgeError, InvalidVertexError
from repro.graph import GraphBuilder


def build_triangle():
    builder = GraphBuilder()
    a = builder.add_vertex(label="person", age=31)
    b = builder.add_vertex(label="person", age=17)
    c = builder.add_vertex(label="item", price=9.5)
    builder.add_edge(a, b, label="friend", since=2015)
    builder.add_edge(b, c, label="bought")
    builder.add_edge(a, c, label="bought", when=2020)
    return builder.build()


class TestBuilder:
    def test_shape(self):
        graph = build_triangle()
        assert graph.num_vertices == 3
        assert graph.num_edges == 3

    def test_add_vertices_bulk(self):
        builder = GraphBuilder()
        ids = builder.add_vertices(5, label="x")
        assert list(ids) == [0, 1, 2, 3, 4]
        graph = builder.build()
        assert graph.num_vertices == 5
        assert graph.vertex_label_name(3) == "x"

    def test_edge_endpoint_validation(self):
        builder = GraphBuilder()
        builder.add_vertex()
        with pytest.raises(GraphError):
            builder.add_edge(0, 7)

    def test_single_use(self):
        builder = GraphBuilder()
        builder.add_vertex()
        builder.build()
        with pytest.raises(GraphError):
            builder.add_vertex()
        with pytest.raises(GraphError):
            builder.build()

    def test_set_props_after_add(self):
        builder = GraphBuilder()
        v = builder.add_vertex()
        e = builder.add_edge(v, v)
        builder.set_vertex_prop(v, "age", 9)
        builder.set_edge_prop(e, "w", 0.5)
        graph = builder.build()
        assert graph.vertex_prop("age", v) == 9
        assert graph.edge_prop("w", 0) == 0.5

    def test_set_prop_unknown_entity(self):
        builder = GraphBuilder()
        with pytest.raises(GraphError):
            builder.set_vertex_prop(3, "age", 1)
        with pytest.raises(GraphError):
            builder.set_edge_prop(0, "w", 1.0)

    def test_empty_graph(self):
        graph = GraphBuilder().build()
        assert graph.num_vertices == 0
        assert graph.num_edges == 0
        assert graph.degree_stats() == (0, 0, 0.0)


class TestAdjacency:
    def test_out_edges_sorted_by_destination(self):
        builder = GraphBuilder()
        for _ in range(4):
            builder.add_vertex()
        builder.add_edge(0, 3)
        builder.add_edge(0, 1)
        builder.add_edge(0, 2)
        graph = builder.build()
        dst, _ = graph.out_edges(0)
        assert list(dst) == [1, 2, 3]

    def test_in_edges_sorted_by_source(self):
        builder = GraphBuilder()
        for _ in range(4):
            builder.add_vertex()
        builder.add_edge(3, 0)
        builder.add_edge(1, 0)
        builder.add_edge(2, 0)
        graph = builder.build()
        src, _ = graph.in_edges(0)
        assert list(src) == [1, 2, 3]

    def test_in_out_share_edge_ids(self):
        graph = build_triangle()
        for vertex in graph.vertices():
            dst, eids = graph.out_edges(vertex)
            for d, eid in zip(dst, eids):
                assert graph.edge_endpoints(int(eid)) == (vertex, int(d))
            src, eids = graph.in_edges(vertex)
            for s, eid in zip(src, eids):
                assert graph.edge_endpoints(int(eid)) == (int(s), vertex)

    def test_degrees(self):
        graph = build_triangle()
        assert graph.out_degree(0) == 2
        assert graph.in_degree(2) == 2
        assert graph.in_degree(0) == 0

    def test_edges_between_parallel(self):
        builder = GraphBuilder()
        builder.add_vertex()
        builder.add_vertex()
        builder.add_edge(0, 1)
        builder.add_edge(0, 1)
        builder.add_edge(1, 0)
        graph = builder.build()
        assert len(graph.edges_between(0, 1)) == 2
        assert len(graph.edges_between(1, 0)) == 1
        assert graph.edges_between(1, 1) == []

    def test_in_edges_from(self):
        graph = build_triangle()
        # edge a(0) -> c(2) exists
        assert graph.in_edges_from(2, 0) == graph.edges_between(0, 2)
        assert graph.in_edges_from(0, 2) == []

    def test_has_edge(self):
        graph = build_triangle()
        assert graph.has_edge(0, 1)
        assert not graph.has_edge(1, 0)

    def test_self_loop(self):
        builder = GraphBuilder()
        v = builder.add_vertex()
        builder.add_edge(v, v)
        graph = builder.build()
        assert graph.has_edge(v, v)
        assert graph.out_degree(v) == 1
        assert graph.in_degree(v) == 1


class TestLabelsAndProps:
    def test_labels(self):
        graph = build_triangle()
        assert graph.vertex_label_name(0) == "person"
        assert graph.vertex_label_name(2) == "item"
        labels = {graph.edge_label_name(e) for e in range(3)}
        assert labels == {"friend", "bought"}

    def test_unlabeled_graph(self):
        builder = GraphBuilder()
        builder.add_vertex()
        graph = builder.build()
        assert graph.vertex_label_name(0) is None

    def test_edge_props_follow_renumbering(self):
        builder = GraphBuilder()
        for _ in range(3):
            builder.add_vertex()
        # Insert in an order that forces CSR renumbering.
        builder.add_edge(2, 0, tag=1)
        builder.add_edge(0, 1, tag=2)
        builder.add_edge(1, 2, tag=3)
        graph = builder.build()
        for eid in range(3):
            src, dst = graph.edge_endpoints(eid)
            expected = {(2, 0): 1, (0, 1): 2, (1, 2): 3}[(src, dst)]
            assert graph.edge_prop("tag", eid) == expected

    def test_default_property_values(self):
        graph = build_triangle()
        # vertex 2 never set "age": dense columns default it.
        assert graph.vertex_prop("age", 2) == 0

    def test_bounds_checks(self):
        graph = build_triangle()
        with pytest.raises(InvalidVertexError):
            graph.check_vertex(99)
        with pytest.raises(InvalidEdgeError):
            graph.edge_endpoints(99)

    def test_label_fraction(self):
        graph = build_triangle()
        person = graph.labels.lookup("person")
        assert graph.vertex_label_fraction(person) == pytest.approx(2 / 3)
