"""Unit tests for the cluster simulator substrate."""

import pytest

from repro.cluster import (
    CallbackTask,
    ClusterConfig,
    MachineMetrics,
    Network,
    QueryMetrics,
    Simulator,
    TaskQueue,
    TaskState,
)
from repro.errors import ClusterConfigError, RuntimeFault


class TestClusterConfig:
    def test_defaults_validate(self):
        ClusterConfig()

    @pytest.mark.parametrize(
        "field,value",
        [
            ("num_machines", 0),
            ("workers_per_machine", 0),
            ("ops_per_tick", 0),
            ("network_latency", -1),
            ("bulk_message_size", 0),
            ("flow_control_window", 0),
        ],
    )
    def test_invalid_values_rejected(self, field, value):
        with pytest.raises(ClusterConfigError):
            ClusterConfig(**{field: value})

    def test_replace(self):
        config = ClusterConfig(num_machines=4)
        other = config.replace(num_machines=8)
        assert other.num_machines == 8
        assert config.num_machines == 4


class TestNetwork:
    def test_latency(self):
        network = Network(latency=5)
        network.send(10, 0, 1, "hello")
        assert network.deliver_due(14) == []
        due = network.deliver_due(15)
        assert len(due) == 1
        assert due[0].payload == "hello"

    def test_bandwidth_adds_transfer_time(self):
        network = Network(latency=2, bandwidth=10)
        network.send(0, 0, 1, "big", size=35)
        assert network.deliver_due(4) == []
        assert len(network.deliver_due(5)) == 1

    def test_fifo_per_channel(self):
        network = Network(latency=1, bandwidth=1)
        # A slow big message then a fast small one on the same channel.
        network.send(0, 0, 1, "big", size=10)
        network.send(1, 0, 1, "small", size=0)
        due = network.deliver_due(100)
        assert [envelope.payload for envelope in due] == ["big", "small"]
        assert due[0].deliver_at <= due[1].deliver_at

    def test_channels_are_independent(self):
        network = Network(latency=1, bandwidth=1)
        network.send(0, 0, 1, "slow", size=50)
        network.send(0, 2, 1, "fast", size=0)
        first = network.deliver_due(1)
        assert [envelope.payload for envelope in first] == ["fast"]

    def test_next_delivery_tick(self):
        network = Network(latency=3)
        assert network.next_delivery_tick() is None
        network.send(0, 0, 1, "x")
        assert network.next_delivery_tick() == 3

    def test_deterministic_order_same_tick(self):
        network = Network(latency=0)
        for index in range(5):
            network.send(0, 0, 1, index)
        # Sender-side NIC serialization staggers same-tick messages, but
        # the order stays the send order.
        payloads = [envelope.payload for envelope in network.deliver_due(10)]
        assert payloads == [0, 1, 2, 3, 4]

    def test_sender_rate_staggers_broadcasts(self):
        network = Network(latency=0, sender_rate=1)
        for dst in range(1, 5):
            network.send(0, 0, dst, dst)
        # One message per tick leaves the NIC: the last lands 3 ticks in.
        assert len(network.deliver_due(0)) == 1
        assert len(network.deliver_due(2)) == 2
        assert len(network.deliver_due(3)) == 1

    def test_unlimited_sender_rate(self):
        network = Network(latency=0, sender_rate=0)
        for dst in range(1, 5):
            network.send(0, 0, dst, dst)
        assert len(network.deliver_due(0)) == 4

    @pytest.mark.parametrize("rate", [1, 2, 3, 7, 8])
    def test_clock_stays_integral(self, rate):
        """Regression: fractional NIC serialization cost must never leak
        into delivery ticks (the clock is integer ticks, always)."""
        network = Network(latency=2, sender_rate=rate)
        for index in range(3 * rate + 1):
            network.send(0, 0, 1 + index % 3, index)
        ticks = [envelope.deliver_at for envelope in network.deliver_due(100)]
        assert all(isinstance(tick, int) for tick in ticks)
        assert network.next_delivery_tick() is None

    def test_sender_rate_slots_per_tick(self):
        # rate=3: exactly three messages leave the NIC per tick.
        network = Network(latency=0, sender_rate=3)
        for index in range(7):
            network.send(0, 0, 1 + index % 3, index)
        assert len(network.deliver_due(0)) == 3
        assert len(network.deliver_due(1)) == 3
        assert len(network.deliver_due(2)) == 1

    def test_idle_nic_clock_catches_up(self):
        # A quiet NIC doesn't accumulate debt: sending again later uses
        # the current tick, not stale slots from the last burst.
        network = Network(latency=0, sender_rate=1)
        network.send(0, 0, 1, "early")
        network.deliver_due(0)
        network.send(50, 0, 1, "late")
        due = network.deliver_due(50)
        assert [envelope.payload for envelope in due] == ["late"]


class TestTaskQueue:
    def test_head_skips_done(self):
        queue = TaskQueue()
        first = CallbackTask("a", lambda worker, budget: (0, True))
        second = CallbackTask("b", lambda worker, budget: (1, False))
        queue.push(first)
        queue.push(second)
        assert queue.head() is first
        first.poll(None, 10)
        assert first.state is TaskState.DONE
        assert queue.head() is second
        assert len(queue) == 1


class _CountdownMachine:
    """Test machine: performs N ops then pings its peer; finishes when
    it has both run out of local work and received a ping."""

    def __init__(self, api, work):
        self.api = api
        self.remaining = work
        self.got_ping = False
        self.sent = False
        self.metrics = MachineMetrics()

    def on_message(self, src, payload):
        assert payload == "ping"
        self.got_ping = True

    def worker_step(self, worker_index, budget):
        if self.remaining > 0:
            used = min(budget, self.remaining)
            self.remaining -= used
            self.metrics.ops += used
            if self.remaining == 0 and not self.sent:
                peer = 1 - self.api.machine_id
                self.api.send(peer, "ping")
                self.sent = True
            return used
        return 0

    def is_finished(self):
        return self.remaining == 0 and self.got_ping


class TestSimulator:
    def test_runs_to_completion(self):
        config = ClusterConfig(num_machines=2, workers_per_machine=1,
                               ops_per_tick=10, network_latency=3)
        simulator = Simulator(config)
        machines = [
            _CountdownMachine(simulator.api_for(0), 25),
            _CountdownMachine(simulator.api_for(1), 5),
        ]
        simulator.attach(machines)
        metrics = simulator.run()
        assert metrics.total_ops == 30
        # Machine 0 needs 3 ticks of work; machine 1's ping arrives later.
        assert metrics.ticks >= 3

    def test_machine_count_checked(self):
        simulator = Simulator(ClusterConfig(num_machines=3))
        with pytest.raises(RuntimeFault):
            simulator.attach([])

    def test_self_send_rejected(self):
        simulator = Simulator(ClusterConfig(num_machines=2))
        api = simulator.api_for(0)
        with pytest.raises(RuntimeFault):
            api.send(0, "loopback")

    def test_metrics_collect(self):
        per_machine = [MachineMetrics(ops=5), MachineMetrics(ops=7)]
        per_machine[0].buffered_delta(4)
        per_machine[0].buffered_delta(-2)
        metrics = QueryMetrics.collect(100, per_machine)
        assert metrics.ticks == 100
        assert metrics.total_ops == 12
        assert metrics.peak_buffered_contexts == 4
        assert "ticks=100" in metrics.summary()
