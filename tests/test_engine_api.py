"""Conformance tests for the unified Engine protocol (repro.engine_api)."""

import pytest

import repro
from repro import (
    BftEngine,
    ClusterConfig,
    Engine,
    JoinEngine,
    PgxdAsyncEngine,
    SharedMemoryEngine,
    available_engines,
)
from repro.engine_api import QueryHandle, QueryStatus
from repro.errors import QueryAborted
from repro.runtime.engine import QueryResult

ALL_ENGINES = [PgxdAsyncEngine, SharedMemoryEngine, BftEngine, JoinEngine]

QUERY = "SELECT a, b WHERE (a)-[]->(b), a.value > b.value"


def _make(cls, graph):
    if cls in (PgxdAsyncEngine, BftEngine):
        return cls(graph, ClusterConfig(num_machines=2))
    return cls(graph)


class TestEngineProtocol:
    def test_engine_is_abstract(self):
        with pytest.raises(TypeError):
            Engine()

    @pytest.mark.parametrize("cls", ALL_ENGINES)
    def test_subclass_of_engine(self, cls):
        assert issubclass(cls, Engine)

    @pytest.mark.parametrize("cls", ALL_ENGINES)
    def test_uniform_constructor(self, cls, random_graph):
        engine = _make(cls, random_graph)
        assert engine.graph is random_graph
        assert isinstance(engine, Engine)
        assert cls.__name__ in repr(engine)

    @pytest.mark.parametrize("cls", ALL_ENGINES)
    def test_config_kwarg_accepted(self, cls, random_graph):
        # Every engine takes config as the second (optional) argument.
        engine = cls(random_graph, config=ClusterConfig(num_machines=2))
        assert engine.config.num_machines == 2

    @pytest.mark.parametrize("cls", ALL_ENGINES)
    def test_query_returns_populated_result(self, cls, random_graph):
        result = _make(cls, random_graph).query(QUERY)
        assert isinstance(result, QueryResult)
        assert result.metrics.num_results == len(result.rows)
        assert result.metrics.total_ops > 0
        assert result.metrics.ticks > 0
        assert result.result_set.columns

    @pytest.mark.parametrize("cls", ALL_ENGINES)
    def test_all_engines_agree(self, cls, random_graph):
        expected = sorted(_make(SharedMemoryEngine, random_graph)
                          .query(QUERY).rows)
        assert sorted(_make(cls, random_graph).query(QUERY).rows) == expected

    @pytest.mark.parametrize("cls", ALL_ENGINES)
    def test_quantified_paths_supported_everywhere(self, cls, random_graph):
        query = "SELECT DISTINCT a, b WHERE (a)-/{1,2}/->(b)"
        expected = sorted(_make(SharedMemoryEngine, random_graph)
                          .query(query).rows)
        result = _make(cls, random_graph).query(query)
        assert sorted(result.rows) == expected


class TestSubmit:
    """Every engine conforms to the non-blocking submit/handle surface."""

    @pytest.mark.parametrize("cls", ALL_ENGINES)
    def test_submit_returns_live_handle(self, cls, random_graph):
        handle = _make(cls, random_graph).submit(QUERY)
        assert isinstance(handle, QueryHandle)
        assert isinstance(handle.status, QueryStatus)
        assert not handle.done
        assert handle.query_id == "q0"
        assert "q0" in repr(handle)

    @pytest.mark.parametrize("cls", ALL_ENGINES)
    def test_result_matches_query(self, cls, random_graph):
        rows = sorted(_make(cls, random_graph).query(QUERY).rows)
        handle = _make(cls, random_graph).submit(QUERY)
        result = handle.result()
        assert sorted(result.rows) == rows
        assert handle.status is QueryStatus.DONE
        assert handle.done
        assert handle.metrics is result.metrics
        assert handle.metrics.num_results == len(result.rows)
        # result() is idempotent once terminal.
        assert handle.result() is result

    @pytest.mark.parametrize("cls", ALL_ENGINES)
    def test_cancel_before_result(self, cls, random_graph):
        handle = _make(cls, random_graph).submit(QUERY)
        assert handle.cancel()
        # The service path cancels at the next scheduling grant, the
        # sync path immediately; terminal state is the contract.
        with pytest.raises(QueryAborted):
            handle.result()
        assert handle.status is QueryStatus.CANCELLED

    @pytest.mark.parametrize("cls", ALL_ENGINES)
    def test_cancel_after_done_refused(self, cls, random_graph):
        handle = _make(cls, random_graph).submit(QUERY)
        handle.result()
        assert not handle.cancel()
        assert handle.status is QueryStatus.DONE

    @pytest.mark.parametrize("cls", ALL_ENGINES)
    def test_query_ids_are_distinct(self, cls, random_graph):
        engine = _make(cls, random_graph)
        first = engine.submit(QUERY)
        second = engine.submit("SELECT a WHERE (a)-[]->(b)")
        assert first.query_id != second.query_id

    @pytest.mark.parametrize("cls", ALL_ENGINES)
    def test_metrics_none_before_execution(self, cls, random_graph):
        engine = _make(cls, random_graph)
        # A second submission queues behind the first on the async
        # engine's single service; either way no work ran yet.
        engine.submit(QUERY)
        handle = engine.submit(QUERY)
        assert handle.metrics is None

    @pytest.mark.parametrize("cls", ALL_ENGINES)
    def test_quantified_paths_submit(self, cls, random_graph):
        query = "SELECT DISTINCT a, b WHERE (a)-/{1,2}/->(b)"
        expected = sorted(_make(cls, random_graph).query(query).rows)
        handle = _make(cls, random_graph).submit(query)
        assert sorted(handle.result().rows) == expected

    @pytest.mark.parametrize("cls", ALL_ENGINES)
    def test_submit_deadline_aborts(self, cls, random_graph):
        handle = _make(cls, random_graph).submit(QUERY, deadline=1)
        if cls is PgxdAsyncEngine:
            with pytest.raises(QueryAborted):
                handle.result()
            assert handle.status is QueryStatus.ABORTED
            assert handle.metrics is not None
        else:
            # The baselines have no tick-clock enforcement; the
            # deadline is accepted but unenforced.
            handle.result()
            assert handle.status is QueryStatus.DONE

    def test_async_submit_routes_through_service(self, random_graph):
        engine = _make(PgxdAsyncEngine, random_graph)
        handle = engine.submit(QUERY)
        assert handle.status is QueryStatus.RUNNING
        handle.result()
        assert engine.service().scope(handle.query_id).status \
            is QueryStatus.DONE


class TestRegistry:
    def test_available_engines_names(self):
        registry = available_engines()
        assert set(registry) == {"async", "shared-memory", "bft", "join"}
        assert registry["async"] is PgxdAsyncEngine
        assert all(issubclass(cls, Engine) for cls in registry.values())

    def test_registry_engines_runnable(self, random_graph):
        for cls in available_engines().values():
            result = _make(cls, random_graph).query(
                "SELECT a WHERE (a)-[]->(b)"
            )
            assert result.metrics.num_results == len(result.rows)

    def test_top_level_exports(self):
        for name in ("Engine", "available_engines", "PgxdAsyncEngine",
                     "SharedMemoryEngine", "BftEngine", "JoinEngine"):
            assert hasattr(repro, name)
            assert name in repro.__all__
