"""Conformance tests for the unified Engine protocol (repro.engine_api)."""

import pytest

import repro
from repro import (
    BftEngine,
    ClusterConfig,
    Engine,
    JoinEngine,
    PgxdAsyncEngine,
    SharedMemoryEngine,
    available_engines,
)
from repro.runtime.engine import QueryResult

ALL_ENGINES = [PgxdAsyncEngine, SharedMemoryEngine, BftEngine, JoinEngine]

QUERY = "SELECT a, b WHERE (a)-[]->(b), a.value > b.value"


def _make(cls, graph):
    if cls in (PgxdAsyncEngine, BftEngine):
        return cls(graph, ClusterConfig(num_machines=2))
    return cls(graph)


class TestEngineProtocol:
    def test_engine_is_abstract(self):
        with pytest.raises(TypeError):
            Engine()

    @pytest.mark.parametrize("cls", ALL_ENGINES)
    def test_subclass_of_engine(self, cls):
        assert issubclass(cls, Engine)

    @pytest.mark.parametrize("cls", ALL_ENGINES)
    def test_uniform_constructor(self, cls, random_graph):
        engine = _make(cls, random_graph)
        assert engine.graph is random_graph
        assert isinstance(engine, Engine)
        assert cls.__name__ in repr(engine)

    @pytest.mark.parametrize("cls", ALL_ENGINES)
    def test_config_kwarg_accepted(self, cls, random_graph):
        # Every engine takes config as the second (optional) argument.
        engine = cls(random_graph, config=ClusterConfig(num_machines=2))
        assert engine.config.num_machines == 2

    @pytest.mark.parametrize("cls", ALL_ENGINES)
    def test_query_returns_populated_result(self, cls, random_graph):
        result = _make(cls, random_graph).query(QUERY)
        assert isinstance(result, QueryResult)
        assert result.metrics.num_results == len(result.rows)
        assert result.metrics.total_ops > 0
        assert result.metrics.ticks > 0
        assert result.result_set.columns

    @pytest.mark.parametrize("cls", ALL_ENGINES)
    def test_all_engines_agree(self, cls, random_graph):
        expected = sorted(_make(SharedMemoryEngine, random_graph)
                          .query(QUERY).rows)
        assert sorted(_make(cls, random_graph).query(QUERY).rows) == expected

    @pytest.mark.parametrize("cls", ALL_ENGINES)
    def test_quantified_paths_supported_everywhere(self, cls, random_graph):
        query = "SELECT DISTINCT a, b WHERE (a)-/{1,2}/->(b)"
        expected = sorted(_make(SharedMemoryEngine, random_graph)
                          .query(query).rows)
        result = _make(cls, random_graph).query(query)
        assert sorted(result.rows) == expected


class TestRegistry:
    def test_available_engines_names(self):
        registry = available_engines()
        assert set(registry) == {"async", "shared-memory", "bft", "join"}
        assert registry["async"] is PgxdAsyncEngine
        assert all(issubclass(cls, Engine) for cls in registry.values())

    def test_registry_engines_runnable(self, random_graph):
        for cls in available_engines().values():
            result = _make(cls, random_graph).query(
                "SELECT a WHERE (a)-[]->(b)"
            )
            assert result.metrics.num_results == len(result.rows)

    def test_top_level_exports(self):
        for name in ("Engine", "available_engines", "PgxdAsyncEngine",
                     "SharedMemoryEngine", "BftEngine", "JoinEngine"):
            assert hasattr(repro, name)
            assert name in repro.__all__
