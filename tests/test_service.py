"""Tests for the concurrent multi-query service (repro.service)."""

import pytest

from repro import ClusterConfig, PgxdAsyncEngine
from repro.context import ExecutionContext
from repro.engine_api import QueryStatus
from repro.errors import ClusterConfigError, PlanError, QueryAborted, \
    RuntimeFault
from repro.service import (
    QueryService,
    ServiceConfig,
    TrafficConfig,
    arrival_schedule,
    percentile,
    run_traffic,
    saturation_sweep,
    verify_serial_parity,
)

QUERIES = [
    "SELECT a, b WHERE (a)-[]->(b), a.value > b.value",
    "SELECT x, y WHERE (x)-[]->(y)",
    "SELECT a, c WHERE (a)-[]->(b), (b)-[]->(c)",
]


def _engine(random_graph, **overrides):
    config = ClusterConfig(num_machines=3, **overrides)
    return PgxdAsyncEngine(random_graph, config)


class TestServiceConfig:
    def test_defaults(self):
        config = ServiceConfig()
        assert config.max_concurrent == 4
        assert config.scope_window is None

    @pytest.mark.parametrize("bad", [
        {"max_concurrent": 0},
        {"scope_window": 0},
        {"sample_interval": 0},
    ])
    def test_validation(self, bad):
        with pytest.raises(ClusterConfigError):
            ServiceConfig(**bad)

    def test_window_carved_evenly(self, random_graph):
        engine = _engine(random_graph, flow_control_window=8)
        service = QueryService(engine, ServiceConfig(max_concurrent=4))
        assert service.scope_config.flow_control_window == 2
        # Deployment shape untouched; only the budget is scoped.
        assert service.scope_config.num_machines == 3

    def test_window_pinned(self, random_graph):
        engine = _engine(random_graph, flow_control_window=8)
        service = QueryService(
            engine, ServiceConfig(max_concurrent=4, scope_window=5)
        )
        assert service.scope_config.flow_control_window == 5

    def test_window_never_below_one(self, random_graph):
        engine = _engine(random_graph, flow_control_window=2)
        service = QueryService(engine, ServiceConfig(max_concurrent=8))
        assert service.scope_config.flow_control_window == 1


class TestLifecycle:
    def test_submit_runs_to_done(self, random_graph):
        service = QueryService(_engine(random_graph))
        handle = service.submit(QUERIES[0])
        assert handle.status is QueryStatus.RUNNING
        result = handle.result()
        assert handle.status is QueryStatus.DONE
        assert handle.done
        assert result.rows
        assert handle.metrics is result.metrics
        assert service.idle

    def test_queueing_beyond_slots(self, random_graph):
        service = QueryService(
            _engine(random_graph), ServiceConfig(max_concurrent=1)
        )
        first = service.submit(QUERIES[0])
        second = service.submit(QUERIES[1])
        assert first.status is QueryStatus.RUNNING
        assert second.status is QueryStatus.QUEUED
        service.drain()
        assert first.status is QueryStatus.DONE
        assert second.status is QueryStatus.DONE
        scope = service.scope(second.query_id)
        assert scope.admission_wait > 0

    def test_duplicate_query_id_rejected(self, random_graph):
        service = QueryService(_engine(random_graph))
        service.submit(QUERIES[0], query_id="same")
        with pytest.raises(RuntimeFault):
            service.submit(QUERIES[1], query_id="same")

    def test_quantified_paths_rejected(self, random_graph):
        service = QueryService(_engine(random_graph))
        with pytest.raises(PlanError):
            service.submit("SELECT DISTINCT a, b WHERE (a)-/{1,2}/->(b)")

    def test_stats_table(self, random_graph):
        service = QueryService(_engine(random_graph))
        for query in QUERIES:
            service.submit(query)
        service.drain()
        records = service.stats()
        assert [r["query_id"] for r in records] == ["q0", "q1", "q2"]
        assert all(r["status"] == "done" for r in records)
        assert all(r["rows"] is not None for r in records)
        assert all(r["latency"] > 0 for r in records)


class TestDeterminism:
    """Concurrent execution must equal serial, row for row, tick for tick."""

    def test_concurrent_matches_solo_run(self, random_graph):
        """Each scope's result is bit-identical to a solo engine run
        under the same scoped config — co-tenancy is invisible."""
        engine = _engine(random_graph, flow_control_window=4)
        service = QueryService(engine, ServiceConfig(max_concurrent=3))
        handles = [service.submit(query) for query in QUERIES]
        service.drain()
        solo_engine = PgxdAsyncEngine(random_graph, service.scope_config)
        for handle, query in zip(handles, QUERIES):
            concurrent = handle.result()
            solo = solo_engine.query(query)
            assert concurrent.rows == solo.rows
            for metric in ("ticks", "total_ops", "num_results",
                           "work_messages", "contexts_shipped",
                           "peak_buffered_contexts"):
                assert getattr(concurrent.metrics, metric) == \
                    getattr(solo.metrics, metric), metric

    def test_serial_parity_gate(self, random_graph):
        engine = _engine(random_graph)
        traffic = TrafficConfig(arrivals=6, mean_interarrival=32,
                                slots=3, seed=7)
        concurrent, serial, mismatches = verify_serial_parity(
            engine, traffic
        )
        assert mismatches == []
        assert concurrent.completed == 6
        assert serial.completed == 6
        assert concurrent.peak_active >= 2

    def test_service_run_reproducible(self, random_graph):
        reports = []
        for _ in range(2):
            engine = _engine(random_graph)
            traffic = TrafficConfig(arrivals=5, mean_interarrival=48,
                                    slots=4, seed=3)
            reports.append(run_traffic(engine, traffic))
        first, second = reports
        assert first.total_ticks == second.total_ticks
        assert first.latencies == second.latencies
        assert first.records == second.records


class TestIsolation:
    """Cancelling or aborting one tenant never perturbs co-tenants."""

    def _run(self, random_graph, cancel_after=None):
        engine = _engine(random_graph)
        service = QueryService(engine, ServiceConfig(max_concurrent=3))
        handles = [service.submit(query) for query in QUERIES]
        if cancel_after is not None:
            for _ in range(cancel_after):
                service.step()
            handles[0].cancel()
        service.drain()
        return service, handles

    def test_cancelled_straggler_leaves_cotenants_bit_identical(
        self, random_graph
    ):
        baseline, _ = self._run(random_graph)
        cancelled, handles = self._run(random_graph, cancel_after=30)
        assert handles[0].status is QueryStatus.CANCELLED
        with pytest.raises(QueryAborted):
            handles[0].result()
        for query_id in ("q1", "q2"):
            a = baseline.scope(query_id)
            b = cancelled.scope(query_id)
            assert b.status is QueryStatus.DONE
            assert a.result.rows == b.result.rows
            for metric in ("ticks", "total_ops", "num_results",
                           "work_messages", "contexts_shipped",
                           "peak_buffered_contexts"):
                assert getattr(a.result.metrics, metric) == \
                    getattr(b.result.metrics, metric), metric

    def test_cancel_queued_scope_is_immediate(self, random_graph):
        service = QueryService(
            _engine(random_graph), ServiceConfig(max_concurrent=1)
        )
        first = service.submit(QUERIES[0])
        second = service.submit(QUERIES[1])
        assert second.cancel()
        assert second.status is QueryStatus.CANCELLED
        with pytest.raises(QueryAborted):
            second.result()
        service.drain()
        assert first.status is QueryStatus.DONE
        # A terminal scope can no longer be cancelled.
        assert not second.cancel()
        assert not first.cancel()

    def test_cancelled_scope_reports_partial_metrics(self, random_graph):
        service = QueryService(_engine(random_graph))
        handle = service.submit(QUERIES[2])
        for _ in range(20):
            service.step()
        handle.cancel()
        service.drain()
        assert handle.status is QueryStatus.CANCELLED
        assert handle.metrics is not None
        assert handle.metrics.ticks > 0


class TestDeadlines:
    def test_deadline_aborts_with_cotenant_flow_state(self, random_graph):
        service = QueryService(
            _engine(random_graph), ServiceConfig(max_concurrent=3)
        )
        doomed = service.submit(QUERIES[2], deadline=10)
        service.submit(QUERIES[0])
        service.drain()
        assert doomed.status is QueryStatus.ABORTED
        with pytest.raises(QueryAborted) as excinfo:
            doomed.result()
        aborted = excinfo.value
        # The flow snapshot is tenant-aware: own machines plus every
        # co-tenant's, each entry tagged with its query_id.
        tenants = {entry["query_id"] for entry in aborted.flow_state}
        assert doomed.query_id in tenants
        assert "q1" in tenants
        assert "co-tenant" in aborted.detail

    def test_deadline_is_virtual_ticks(self, random_graph):
        """A deadline binds the scope's own clock, not the global one —
        co-tenancy dilation cannot spuriously time a query out."""
        engine = _engine(random_graph)
        solo = PgxdAsyncEngine(
            random_graph,
            QueryService(engine, ServiceConfig(max_concurrent=3))
            .scope_config,
        )
        budget = solo.query(QUERIES[0]).metrics.ticks + 1
        service = QueryService(engine, ServiceConfig(max_concurrent=3))
        handle = service.submit(QUERIES[0], deadline=budget)
        service.submit(QUERIES[1])
        service.submit(QUERIES[2])
        service.drain()
        # Global time exceeded the deadline, virtual time did not.
        assert service.now > budget
        assert handle.status is QueryStatus.DONE


class TestFairShare:
    def test_priority_weights_grants(self, random_graph):
        service = QueryService(
            _engine(random_graph), ServiceConfig(max_concurrent=2)
        )
        fast = service.submit(QUERIES[0], priority=4)
        slow = service.submit(QUERIES[0], priority=1)
        service.drain()
        fast_scope = service.scope(fast.query_id)
        slow_scope = service.scope(slow.query_id)
        # Identical queries, identical virtual work ...
        assert fast_scope.virtual_ticks == slow_scope.virtual_ticks
        # ... but the priority-4 tenant got its grants ~4x as often.
        assert fast_scope.finished_at < slow_scope.finished_at
        assert fast_scope.latency < slow_scope.latency

    def test_equal_priorities_interleave(self, random_graph):
        service = QueryService(
            _engine(random_graph), ServiceConfig(max_concurrent=2)
        )
        a = service.submit(QUERIES[0])
        b = service.submit(QUERIES[0])
        service.drain()
        # Same query, same priority: they finish within a grant of each
        # other rather than running back to back.
        gap = abs(service.scope(a.query_id).finished_at
                  - service.scope(b.query_id).finished_at)
        assert gap <= 1


class TestTelemetry:
    def test_per_tenant_registry_and_series(self, random_graph):
        service = QueryService(
            _engine(random_graph),
            ServiceConfig(max_concurrent=2, telemetry=True,
                          sample_interval=16),
        )
        for query in QUERIES:
            service.submit(query)
        service.drain()
        registry = service.registry
        assert registry is not None
        rows = registry.samples()
        done = [
            value for name, labels, value in rows
            if name == "repro_service_queries_total"
            and labels.get("status") == "done"
        ]
        assert done == [3]
        grants = [
            value for name, labels, value in rows
            if name == "repro_service_scope_ticks_total"
        ]
        assert len(grants) == 3
        assert sum(grants) == service.now
        assert service.series
        assert all("scopes" in point for point in service.series)

    def test_no_registry_without_telemetry(self, random_graph):
        service = QueryService(_engine(random_graph))
        service.submit(QUERIES[0]).result()
        assert service.registry is None
        assert service.series == []


class TestTraffic:
    def test_percentile_nearest_rank(self):
        assert percentile([], 50) is None
        assert percentile([10], 99) == 10
        values = list(range(1, 101))
        assert percentile(values, 50) == 50
        assert percentile(values, 95) == 95
        assert percentile(values, 99) == 99

    def test_arrival_schedule_deterministic(self):
        traffic = TrafficConfig(arrivals=10, mean_interarrival=32, seed=9)
        first = arrival_schedule(traffic)
        assert first == arrival_schedule(traffic)
        assert len(first) == 10
        assert all(b > a for a, b in zip(first, first[1:]))

    def test_open_loop_run(self, random_graph):
        engine = _engine(random_graph)
        traffic = TrafficConfig(arrivals=8, mean_interarrival=24,
                                slots=4, seed=2)
        report = run_traffic(engine, traffic)
        assert report.arrivals == 8
        assert report.completed == 8
        assert report.peak_active >= 2
        assert report.percentile(50) is not None
        assert report.percentile(50) <= report.percentile(95) \
            <= report.percentile(99)
        assert report.throughput_per_kilotick > 0
        assert "latency p50=" in report.summary()

    def test_deadline_traffic_aborts_counted(self, random_graph):
        engine = _engine(random_graph)
        traffic = TrafficConfig(arrivals=4, mean_interarrival=16,
                                slots=4, deadline=5, seed=2)
        report = run_traffic(engine, traffic)
        assert report.aborted == 4
        assert report.completed == 0

    def test_saturation_sweep_orders_load(self, random_graph):
        engine = _engine(random_graph)
        traffic = TrafficConfig(arrivals=5, slots=4, seed=4)
        curve = saturation_sweep(engine, traffic, gaps=(512, 8))
        assert [gap for gap, _ in curve] == [512, 8]
        light, heavy = curve[0][1], curve[1][1]
        assert light.completed == heavy.completed == 5
        # Saturation: the overloaded point queues more and waits longer.
        assert heavy.peak_active >= light.peak_active
        assert heavy.percentile(95) >= light.percentile(95)


class TestEngineIntegration:
    def test_engine_submit_routes_through_service(self, random_graph):
        engine = _engine(random_graph)
        handle = engine.submit(QUERIES[0])
        assert handle.query_id == "q0"
        assert handle.result().rows
        assert engine.service().scope("q0").status is QueryStatus.DONE

    def test_engine_service_config_window(self, random_graph):
        engine = _engine(random_graph, flow_control_window=8)
        service = engine.service(ServiceConfig(max_concurrent=2))
        assert service.scope_config.flow_control_window == 4
        assert engine.service() is service
        service.submit(QUERIES[0]).result()
        # A used service is never silently replaced.
        assert engine.service(ServiceConfig(max_concurrent=8)) is service


class TestExecutionContext:
    def test_legacy_kwargs_match_context(self, random_graph):
        engine = _engine(random_graph)
        plan = engine.plan(QUERIES[0])
        via_kwargs = engine.execute_plan(plan, deadline=10**9)
        via_context = engine.execute_plan(
            plan, ExecutionContext(deadline=10**9)
        )
        assert via_kwargs.rows == via_context.rows
        assert via_kwargs.metrics.ticks == via_context.metrics.ticks

    def test_rejects_non_context(self, random_graph):
        engine = _engine(random_graph)
        plan = engine.plan(QUERIES[0])
        with pytest.raises(TypeError):
            engine.execute_plan(plan, object())

    def test_from_options_maps_timeout(self):
        from repro.plan import PlannerOptions

        context = ExecutionContext.from_options(
            PlannerOptions(timeout_ticks=42)
        )
        assert context.deadline == 42
        assert context.tracer is None
        assert context.telemetry is None

    def test_replace_is_functional(self):
        context = ExecutionContext()
        tagged = context.replace(query_id="q9", priority=3)
        assert tagged.query_id == "q9"
        assert tagged.priority == 3
        assert context.query_id is None
