"""Unit tests for the flow control manager (paper §3.3)."""

import pytest

from repro.errors import FlowControlError
from repro.runtime.flow_control import FlowControl


def make(num_stages=3, num_machines=4, window=2, dynamic=True):
    return FlowControl(num_stages, num_machines, 0, window, dynamic=dynamic)


class TestWindows:
    def test_window_enforced(self):
        flow = make(window=2)
        assert flow.can_send(1, 2)
        flow.on_send(1, 2)
        flow.on_send(1, 2)
        assert not flow.can_send(1, 2)

    def test_windows_are_per_stage_and_dest(self):
        flow = make(window=1)
        flow.on_send(1, 2)
        assert flow.can_send(1, 3)
        assert flow.can_send(2, 2)
        assert not flow.can_send(1, 2)

    def test_send_without_window_raises(self):
        flow = make(window=1)
        flow.on_send(0, 1)
        with pytest.raises(FlowControlError):
            flow.on_send(0, 1)

    def test_ack_frees_window(self):
        flow = make(window=1)
        flow.on_send(0, 1)
        flow.on_ack_from(0, 1, 1)
        assert flow.can_send(0, 1)

    def test_negative_inflight_raises(self):
        flow = make()
        with pytest.raises(FlowControlError):
            flow.on_ack_from(0, 1, 1)

    def test_inflight_total(self):
        flow = make()
        flow.on_send(0, 1)
        flow.on_send(1, 2)
        assert flow.inflight_total() == 2


class TestRedistribution:
    def test_completed_stage_capacity_moves_later(self):
        flow = make(num_stages=4, window=3)
        flow.redistribute_completed_stage(0)
        assert flow.limit(0, 1) == 0
        # 3 slots split across stages 1..3 -> +1 each.
        assert flow.limit(1, 1) == 4
        assert flow.limit(2, 1) == 4
        assert flow.limit(3, 1) == 4

    def test_uneven_split_remainder(self):
        flow = make(num_stages=3, window=3)
        flow.redistribute_completed_stage(0)
        # 3 slots over stages 1, 2 -> 2 and 1 extra.
        assert flow.limit(1, 1) == 5
        assert flow.limit(2, 1) == 4

    def test_idempotent(self):
        flow = make(num_stages=3, window=2)
        flow.redistribute_completed_stage(0)
        limit = flow.limit(1, 1)
        flow.redistribute_completed_stage(0)
        assert flow.limit(1, 1) == limit

    def test_last_stage_redistribution_is_noop(self):
        flow = make(num_stages=3, window=2)
        flow.redistribute_completed_stage(2)
        assert flow.limit(2, 1) == 2

    def test_static_mode_disables(self):
        flow = make(dynamic=False)
        flow.redistribute_completed_stage(0)
        assert flow.limit(0, 1) == 2
        assert flow.limit(1, 1) == 2


class TestBorrowing:
    def test_wants_quota_when_exhausted(self):
        flow = make(window=1)
        assert not flow.wants_quota(0, 1)
        flow.on_send(0, 1)
        assert flow.wants_quota(0, 1)

    def test_no_repeat_requests(self):
        flow = make(window=1)
        flow.on_send(0, 1)
        flow.note_quota_requested(0, 1)
        assert not flow.wants_quota(0, 1)

    def test_grant_extends_window(self):
        flow = make(window=1)
        flow.on_send(0, 1)
        flow.note_quota_requested(0, 1)
        flow.on_quota_grant(0, 1, 2)
        assert flow.can_send(0, 1)
        # A later exhaustion may request again.
        flow.on_send(0, 1)
        flow.on_send(0, 1)
        assert flow.wants_quota(0, 1)

    def test_donation_gives_half_of_spare(self):
        flow = make(window=4)
        donated = flow.donate_quota(0, 1)
        assert donated == 2
        assert flow.limit(0, 1) == 2

    def test_donation_keeps_a_slot(self):
        flow = make(window=1)
        assert flow.donate_quota(0, 1) == 0
        assert flow.limit(0, 1) == 1

    def test_donation_respects_inflight(self):
        flow = make(window=4)
        flow.on_send(0, 1)
        flow.on_send(0, 1)
        flow.on_send(0, 1)
        # spare = 1 -> donate 0 (half rounds down).
        assert flow.donate_quota(0, 1) == 0

    def test_static_mode_never_borrows(self):
        flow = make(window=1, dynamic=False)
        flow.on_send(0, 1)
        assert not flow.wants_quota(0, 1)
        assert flow.donate_quota(0, 2) == 0

    def test_receiver_allowance_conserved(self):
        """Donation moves capacity; the sum across senders is constant."""
        donor = make(window=4)
        requester = make(window=4)
        amount = donor.donate_quota(1, 2)
        requester.on_quota_grant(1, 2, amount)
        assert donor.limit(1, 2) + requester.limit(1, 2) == 8
