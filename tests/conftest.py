"""Shared fixtures for the test suite."""

import pytest

from repro.cluster import ClusterConfig
from repro.graph import GraphBuilder, uniform_random_graph


@pytest.fixture
def social_graph():
    """Small labeled/propertied graph used across front-end tests.

    People 0-3 (ages 31, 17, 25, 16), items 4-5 (laptop 1400.0,
    book 20.0); friendships and purchases with ``when`` years.
    """
    builder = GraphBuilder()
    ages = [31, 17, 25, 16]
    for index, age in enumerate(ages):
        builder.add_vertex(label="person", age=age, name="p%d" % index)
    builder.add_vertex(label="item", price=1400.0, name="laptop")
    builder.add_vertex(label="item", price=20.0, name="book")
    builder.add_edge(0, 1, label="friend", since=2015)
    builder.add_edge(1, 2, label="friend", since=2018)
    builder.add_edge(2, 0, label="friend", since=2020)
    builder.add_edge(0, 4, label="bought", when=2019)
    builder.add_edge(1, 4, label="bought", when=2021)
    builder.add_edge(3, 5, label="bought", when=2022)
    return builder.build()


@pytest.fixture
def random_graph():
    """Deterministic uniform random graph (80 vertices, 320 edges)."""
    return uniform_random_graph(80, 320, seed=1234, num_types=4)


@pytest.fixture
def small_config():
    """A 3-machine cluster config used in most runtime tests."""
    return ClusterConfig(num_machines=3, workers_per_machine=2)
