"""Property-based tests: the distributed engine vs the brute-force oracle
on randomly generated graphs, queries, and cluster configurations."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ClusterConfig, PlannerOptions, run_query
from repro.graph import GraphBuilder
from repro.plan import MatchSemantics

from .oracle import brute_force_rows


@st.composite
def small_graphs(draw):
    """Propertied random multigraphs small enough for brute force."""
    # At least one edge so that every property column referenced by the
    # query pool exists (missing properties are a plan-time error).
    num_vertices = draw(st.integers(min_value=1, max_value=8))
    num_edges = draw(st.integers(min_value=1, max_value=16))
    builder = GraphBuilder()
    for _ in range(num_vertices):
        builder.add_vertex(
            t=draw(st.integers(min_value=0, max_value=2)),
            v=draw(st.integers(min_value=0, max_value=9)),
        )
    for _ in range(num_edges):
        builder.add_edge(
            draw(st.integers(min_value=0, max_value=num_vertices - 1)),
            draw(st.integers(min_value=0, max_value=num_vertices - 1)),
            label=draw(st.sampled_from(["x", "y"])),
            w=draw(st.integers(min_value=0, max_value=5)),
        )
    return builder.build()


QUERY_POOL = [
    "SELECT a, b WHERE (a)-[]->(b)",
    "SELECT a, b WHERE (a)-[:x]->(b)",
    "SELECT a, b WHERE (a)<-[]-(b), a.t = b.t",
    "SELECT a, b, c WHERE (a)-[]->(b)-[]->(c), a.v < c.v",
    "SELECT a, b WHERE (a)-[]->(b), (b)-[]->(a)",
    "SELECT a, b, c WHERE (a)-[]->(b), (a)-[]->(c), b != c",
    "SELECT a, e.w WHERE (a)-[e]->(b), e.w > 2",
    "SELECT a WHERE (a WITH t = 1)-[]->(b WITH v > 4)",
]


class TestEngineMatchesOracle:
    @given(
        graph=small_graphs(),
        query=st.sampled_from(QUERY_POOL),
        machines=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=60, deadline=None)
    def test_homomorphism(self, graph, query, machines):
        expected = sorted(brute_force_rows(graph, query))
        got = sorted(
            run_query(
                graph, query, ClusterConfig(num_machines=machines),
                debug_checks=True,
            ).rows
        )
        assert got == expected

    @given(
        graph=small_graphs(),
        query=st.sampled_from(QUERY_POOL[:6]),
        window=st.integers(min_value=1, max_value=3),
        bulk=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=40, deadline=None)
    def test_flow_control_never_changes_answers(self, graph, query, window,
                                                bulk):
        expected = sorted(brute_force_rows(graph, query))
        got = sorted(
            run_query(
                graph,
                query,
                ClusterConfig(
                    num_machines=3,
                    flow_control_window=window,
                    bulk_message_size=bulk,
                ),
            ).rows
        )
        assert got == expected

    @given(graph=small_graphs(), query=st.sampled_from(QUERY_POOL[:5]))
    @settings(max_examples=30, deadline=None)
    def test_isomorphism(self, graph, query):
        expected = sorted(
            brute_force_rows(graph, query, MatchSemantics.ISOMORPHISM)
        )
        got = sorted(
            run_query(
                graph, query, ClusterConfig(num_machines=2),
                options=PlannerOptions(
                    semantics=MatchSemantics.ISOMORPHISM
                ),
            ).rows
        )
        assert got == expected
