"""Smoke tests: the example scripts must run end to end."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")


def run_example(name, timeout=240):
    path = os.path.join(EXAMPLES_DIR, name)
    return subprocess.run(
        [sys.executable, path],
        capture_output=True,
        text=True,
        timeout=timeout,
        check=False,
    )


class TestExamples:
    def test_quickstart(self):
        proc = run_example("quickstart.py")
        assert proc.returncode == 0, proc.stderr
        assert "minors with expensive purchases" in proc.stdout
        assert "guitar" in proc.stdout

    @pytest.mark.slow
    def test_memory_bounds(self):
        proc = run_example("memory_bounds.py")
        assert proc.returncode == 0, proc.stderr
        assert "BFT baseline peak" in proc.stdout

    @pytest.mark.slow
    def test_monitoring(self):
        proc = run_example("monitoring.py")
        assert proc.returncode == 0, proc.stderr
        assert "bounded-memory claim" in proc.stdout
        assert "regressions vs self: 0" in proc.stdout
