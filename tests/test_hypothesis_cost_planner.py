"""Property test: the cost-based planner is a pure optimization.

For random labeled graphs and a pool of reorderable queries, running
under ``SchedulingPolicy.COST`` — including plans where the model
auto-enables the common-neighbor operator — must return exactly the
rows of the naive appearance-order plan (the §4 invariant the planner
is allowed to change *work*, never *results*).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ClusterConfig, PlannerOptions, run_query
from repro.graph import GraphBuilder
from repro.plan import SchedulingPolicy


@st.composite
def labeled_graphs(draw):
    """Small random graphs with labels and properties worth pricing."""
    num_hubs = draw(st.integers(min_value=1, max_value=3))
    num_items = draw(st.integers(min_value=2, max_value=6))
    num_users = draw(st.integers(min_value=2, max_value=8))
    builder = GraphBuilder()
    hubs = [
        builder.add_vertex(label="hub", name="h%d" % i, t=i % 2)
        for i in range(num_hubs)
    ]
    items = [
        builder.add_vertex(label="item", name="i%d" % i,
                           v=draw(st.integers(min_value=0, max_value=5)))
        for i in range(num_items)
    ]
    users = [
        builder.add_vertex(label="user", name="u%d" % i, t=i % 3)
        for i in range(num_users)
    ]
    num_edges = draw(st.integers(min_value=2, max_value=24))
    for _ in range(num_edges):
        kind = draw(st.integers(min_value=0, max_value=2))
        if kind == 0:
            builder.add_edge(draw(st.sampled_from(users)),
                             draw(st.sampled_from(hubs)), label="follows")
        elif kind == 1:
            builder.add_edge(draw(st.sampled_from(hubs)),
                             draw(st.sampled_from(items)), label="owns")
        else:
            builder.add_edge(draw(st.sampled_from(users)),
                             draw(st.sampled_from(items)), label="likes")
    return builder.build()


QUERY_POOL = [
    # Chains written fat-end first (reordering fodder).
    "SELECT u, h WHERE (u:user)-[:follows]->(h:hub)",
    "SELECT u, h, i WHERE (u:user)-[:follows]->(h:hub)-[:owns]->(i:item)",
    "SELECT u, h WHERE (u:user)-[:follows]->(h:hub), h.name = 'h0'",
    "SELECT u, h, i WHERE (u:user)-[:follows]->(h:hub)-[:owns]->(i:item), "
    "i.v > 2",
    # Intersections the model may answer with the CN operator.
    "SELECT a, i, b WHERE (a:user)-[:likes]->(i:item)<-[:likes]-(b:user)",
    "SELECT a, i, b WHERE (a:user)-[:likes]->(i:item)<-[:likes]-(b:user), "
    "a.name = 'u0', b.name = 'u1'",
    "SELECT a, i, b WHERE (a:hub)-[:owns]->(i:item)<-[:likes]-(b:user), "
    "a.t = 0",
    # Triangle with a cross-variable filter.
    "SELECT u, h, i WHERE (u:user)-[:follows]->(h:hub), "
    "(h)-[:owns]->(i:item), (u)-[:likes]->(i), u.t != i.v",
]


class TestCostOrderMatchesNaive:
    @given(
        graph=labeled_graphs(),
        query=st.sampled_from(QUERY_POOL),
        machines=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=50, deadline=None)
    def test_rows_identical(self, graph, query, machines):
        config = ClusterConfig(num_machines=machines)
        naive = sorted(
            run_query(graph, query, config, PlannerOptions()).rows
        )
        planned = run_query(
            graph, query, config,
            PlannerOptions(scheduling=SchedulingPolicy.COST),
        )
        assert sorted(planned.rows) == naive

    @given(
        graph=labeled_graphs(),
        query=st.sampled_from(QUERY_POOL),
    )
    @settings(max_examples=25, deadline=None)
    def test_rows_identical_with_forced_cn(self, graph, query):
        """Forcing the CN operator under COST must not change rows."""
        config = ClusterConfig(num_machines=2)
        naive = sorted(
            run_query(graph, query, config, PlannerOptions()).rows
        )
        forced = run_query(
            graph, query, config,
            PlannerOptions(scheduling=SchedulingPolicy.COST,
                           use_common_neighbors=True),
        )
        assert sorted(forced.rows) == naive
