"""Brute-force pattern matching oracle for differential tests.

Deliberately shares *nothing* with the planning pipeline or runtime: it
enumerates variable assignments by naive backtracking over the parsed
query AST and evaluates filters with the generic tree-walking evaluator.
Slow, but trustworthy — only used on small graphs.
"""

import itertools

from repro.graph.types import Direction
from repro.pgql import parse_and_validate
from repro.pgql.expressions import EvalEnv, evaluate, evaluate_predicate
from repro.plan.options import MatchSemantics


class GraphEnv(EvalEnv):
    """Evaluation environment reading straight from the graph."""

    def __init__(self, graph, vertex_vars):
        self._graph = graph
        self._vertex_vars = vertex_vars
        self._binding = None

    def bind(self, binding):
        self._binding = binding
        return self

    def entity_id(self, var):
        return self._binding[var]

    def prop(self, var, prop):
        if var in self._vertex_vars:
            return self._graph.vertex_prop(prop, self._binding[var])
        return self._graph.edge_prop(prop, self._binding[var])

    def label(self, var):
        if var in self._vertex_vars:
            return self._graph.vertex_label_name(self._binding[var])
        return self._graph.edge_label_name(self._binding[var])

    def has_prop(self, var, prop):
        if var in self._vertex_vars:
            return self._graph.has_vertex_prop(prop)
        return self._graph.has_edge_prop(prop)


def _pattern_edges(query):
    """Normalized (src_var, dst_var, edge_var, label) with OUT direction."""
    edges = []
    for path in query.paths:
        for index, edge in enumerate(path.edges):
            left = path.vertices[index].var
            right = path.vertices[index + 1].var
            if edge.direction is Direction.OUT:
                edges.append((left, right, edge.var, edge.label))
            else:
                edges.append((right, left, edge.var, edge.label))
    return edges


def brute_force_rows(graph, query_text,
                     semantics=MatchSemantics.HOMOMORPHISM):
    """All select rows of *query_text*, in arbitrary order.

    Supports everything the engines support except aggregation (the
    differential tests cover aggregation separately).
    """
    query = parse_and_validate(query_text)
    vertex_vars = query.vertex_vars()
    vertex_var_set = set(vertex_vars)
    edges = _pattern_edges(query)
    env = GraphEnv(graph, vertex_var_set)

    labels = {}
    for path in query.paths:
        for vertex in path.vertices:
            if vertex.label is not None:
                labels[vertex.var] = vertex.label

    filters = []
    for path in query.paths:
        for vertex in path.vertices:
            if vertex.filter is not None:
                filters.append(vertex.filter)
    filters.extend(query.constraints)

    rows = []
    for assignment in itertools.product(
        range(graph.num_vertices), repeat=len(vertex_vars)
    ):
        binding = dict(zip(vertex_vars, assignment))
        if semantics is not MatchSemantics.HOMOMORPHISM:
            if len(set(assignment)) != len(assignment):
                continue
        if any(
            graph.vertex_label_name(binding[var]) != label
            for var, label in labels.items()
        ):
            continue

        # Candidate graph edges per pattern edge.
        per_edge = []
        feasible = True
        for src_var, dst_var, edge_var, label in edges:
            candidates = [
                eid
                for eid in graph.edges_between(binding[src_var],
                                               binding[dst_var])
                if label is None or graph.edge_label_name(eid) == label
            ]
            if not candidates:
                feasible = False
                break
            per_edge.append(candidates)
        if not feasible:
            continue

        if semantics is MatchSemantics.INDUCED:
            pattern_pairs = {
                (binding[src], binding[dst]) for src, dst, _e, _l in edges
            }
            bad = False
            for u_var, w_var in itertools.permutations(vertex_vars, 2):
                u, w = binding[u_var], binding[w_var]
                if (u, w) in pattern_pairs:
                    continue
                if graph.edges_between(u, w):
                    bad = True
                    break
            if bad:
                continue

        for combo in itertools.product(*per_edge):
            if semantics is not MatchSemantics.HOMOMORPHISM:
                if len(set(combo)) != len(combo):
                    continue
            full = dict(binding)
            for (src_var, dst_var, edge_var, label), eid in zip(edges, combo):
                full[edge_var] = eid
            env.bind(full)
            if not all(evaluate_predicate(f, env) for f in filters):
                continue
            rows.append(
                tuple(
                    evaluate(item.expr, env) for item in query.select_items
                )
            )
    return rows
