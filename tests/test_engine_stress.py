"""Stress and corner-case tests of the full engine.

These exist to catch protocol bugs — premature termination, lost
contexts, ack/window leaks — under adversarial configurations: many
machines relative to the graph, minimal budgets, extreme latencies,
degenerate graphs.
"""

import pytest

from repro import ClusterConfig, run_query
from repro.baselines import SharedMemoryEngine
from repro.graph import (
    BlockPartitioner,
    DistributedGraph,
    GraphBuilder,
    chain_graph,
    star_graph,
    uniform_random_graph,
)
from repro.runtime import PgxdAsyncEngine


class TestManyMachinesSmallGraph:
    def test_more_machines_than_vertices(self):
        graph = chain_graph(4)
        result = run_query(
            graph,
            "SELECT a, b WHERE (a)-[]->(b)",
            ClusterConfig(num_machines=8),
            debug_checks=True,
        )
        assert len(result.rows) == 3

    def test_empty_machines_complete(self):
        # Machines owning nothing must still run the protocol to the end.
        graph = star_graph(3)
        result = run_query(
            graph,
            "SELECT h, l WHERE (h)-[]->(l)",
            ClusterConfig(num_machines=6),
        )
        assert len(result.rows) == 3


class TestExtremeConfigs:
    @pytest.mark.parametrize("latency", [0, 1, 64])
    def test_latency_sweep(self, latency):
        graph = uniform_random_graph(40, 160, seed=6)
        result = run_query(
            graph,
            "SELECT a, b WHERE (a)-[]->(b), a.type != b.type",
            ClusterConfig(num_machines=3, network_latency=latency),
        )
        reference = SharedMemoryEngine(graph).query(
            "SELECT a, b WHERE (a)-[]->(b), a.type != b.type"
        )
        assert sorted(result.rows) == sorted(reference.rows)

    def test_minimal_everything(self):
        graph = uniform_random_graph(60, 240, seed=8)
        config = ClusterConfig(
            num_machines=5,
            workers_per_machine=1,
            ops_per_tick=1,
            bulk_message_size=1,
            flow_control_window=1,
            network_latency=16,
        )
        result = run_query(
            graph, "SELECT a, b, c WHERE (a)-[]->(b)-[]->(c)", config
        )
        reference = SharedMemoryEngine(graph).query(
            "SELECT a, b, c WHERE (a)-[]->(b)-[]->(c)"
        )
        assert sorted(result.rows) == sorted(reference.rows)

    def test_unlimited_sender_rate(self):
        graph = uniform_random_graph(40, 160, seed=2)
        result = run_query(
            graph,
            "SELECT a, b WHERE (a)-[]->(b)",
            ClusterConfig(num_machines=3, sender_messages_per_tick=0),
        )
        assert len(result.rows) == graph.num_edges


class TestSkewedPartitions:
    def test_block_partition_hotspot(self):
        # All of a star's leaves on one machine: heavy cross traffic.
        graph = star_graph(200, direction="out")
        dist = DistributedGraph.create(
            graph, 4, partitioner=BlockPartitioner()
        )
        engine = PgxdAsyncEngine(
            dist, ClusterConfig(num_machines=4, flow_control_window=1,
                                bulk_message_size=2)
        )
        result = engine.query("SELECT h, l WHERE (h)-[]->(l)")
        assert len(result.rows) == 200


class TestDegenerateGraphs:
    def test_all_self_loops(self):
        builder = GraphBuilder()
        for index in range(10):
            builder.add_vertex()
        for index in range(10):
            builder.add_edge(index, index)
        graph = builder.build()
        result = run_query(
            graph,
            "SELECT a, b, c WHERE (a)-[]->(b)-[]->(c)",
            ClusterConfig(num_machines=3),
        )
        # Each self loop matches with a = b = c.
        assert sorted(result.rows) == [(i, i, i) for i in range(10)]

    def test_no_edges(self):
        builder = GraphBuilder()
        builder.add_vertices(20)
        graph = builder.build()
        result = run_query(
            graph,
            "SELECT a, b WHERE (a)-[]->(b)",
            ClusterConfig(num_machines=4),
        )
        assert result.rows == []

    def test_dense_clique_bounded_memory(self):
        from repro.graph import complete_graph

        graph = complete_graph(16)
        config = ClusterConfig(
            num_machines=4, flow_control_window=1, bulk_message_size=2
        )
        result = run_query(
            graph, "SELECT a, b, c WHERE (a)-[]->(b)-[]->(c)", config
        )
        # 16 * 15 * 15 paths (b != a and c != b, homomorphism allows c=a).
        assert len(result.rows) == 16 * 15 * 15
        assert result.metrics.peak_buffered_contexts < len(result.rows) / 10


class TestRepeatedExecution:
    def test_engine_is_stateless_between_queries(self):
        graph = uniform_random_graph(50, 200, seed=12)
        engine = PgxdAsyncEngine(graph, ClusterConfig(num_machines=3))
        query = "SELECT a, b WHERE (a)-[]->(b), a.value > b.value"
        runs = [engine.query(query) for _ in range(3)]
        assert runs[0].rows == runs[1].rows == runs[2].rows
        assert runs[0].metrics.ticks == runs[2].metrics.ticks
