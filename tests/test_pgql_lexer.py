"""Unit tests for the PGQL tokenizer."""

import pytest

from repro.errors import PgqlSyntaxError
from repro.pgql import Token, TokenType, tokenize


def kinds(text):
    return [(t.type, t.value) for t in tokenize(text)[:-1]]


class TestBasics:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("select Where wiTH")
        assert [t.value for t in tokens[:-1]] == ["SELECT", "WHERE", "WITH"]
        assert all(t.type is TokenType.KEYWORD for t in tokens[:-1])

    def test_identifiers(self):
        tokens = tokenize("abc _x a1_b2")
        assert [t.value for t in tokens[:-1]] == ["abc", "_x", "a1_b2"]
        assert all(t.type is TokenType.IDENT for t in tokens[:-1])

    def test_eof_token(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].type is TokenType.EOF

    def test_line_comments(self):
        tokens = tokenize("a -- this is a comment\nb")
        assert [t.value for t in tokens[:-1]] == ["a", "b"]

    def test_position_tracking(self):
        tokens = tokenize("ab cd")
        assert tokens[0].position == 0
        assert tokens[1].position == 3


class TestNumbers:
    def test_integers(self):
        token = tokenize("42")[0]
        assert token.type is TokenType.NUMBER
        assert token.value == 42 and isinstance(token.value, int)

    def test_floats(self):
        assert tokenize("3.25")[0].value == 3.25
        assert tokenize("1e3")[0].value == 1000.0
        assert tokenize("2.5e-2")[0].value == 0.025

    def test_trailing_dot_is_not_float(self):
        # "1.x" must lex as NUMBER(1), ".", IDENT(x) — property access.
        values = [t.value for t in tokenize("1 . x")[:-1]]
        assert values == [1, ".", "x"]


class TestStrings:
    def test_double_and_single_quotes(self):
        assert tokenize('"hello"')[0].value == "hello"
        assert tokenize("'world'")[0].value == "world"

    def test_escapes(self):
        assert tokenize(r'"a\"b"')[0].value == 'a"b'
        assert tokenize(r'"a\nb"')[0].value == "a\nb"

    def test_unterminated(self):
        with pytest.raises(PgqlSyntaxError):
            tokenize('"oops')


class TestArrowsAndOperators:
    def test_right_arrow(self):
        values = [t.value for t in tokenize("-[]->")[:-1]]
        assert values == ["-", "[", "]", "->"]

    def test_left_arrow_before_bracket(self):
        values = [t.value for t in tokenize("<-[]-")[:-1]]
        assert values == ["<-", "[", "]", "-"]

    def test_left_arrow_before_paren(self):
        values = [t.value for t in tokenize("(a)<-(b)")[:-1]]
        assert "<-" in values

    def test_less_than_negative_number(self):
        # "<-" followed by a digit is a comparison with a negation.
        values = [t.value for t in tokenize("a < -3")[:-1]]
        assert values == ["a", "<", "-", 3]

    def test_comparison_operators(self):
        values = [t.value for t in tokenize("<= >= != <> == =")[:-1]]
        assert values == ["<=", ">=", "!=", "!=", "=", "="]

    def test_unknown_character(self):
        with pytest.raises(PgqlSyntaxError):
            tokenize("a ? b")


class TestTokenHelpers:
    def test_is_symbol_keyword(self):
        token = Token(TokenType.SYMBOL, "(", 0)
        assert token.is_symbol("(")
        assert not token.is_keyword("SELECT")
        kw = Token(TokenType.KEYWORD, "SELECT", 0)
        assert kw.is_keyword("SELECT")
        assert not kw.is_symbol("(")
