"""Unit tests for selectivity estimation and query scheduling (§5)."""

from repro.graph import GraphBuilder
from repro.pgql import parse_and_validate
from repro.plan import (
    PlannerOptions,
    SchedulingPolicy,
    plan_query,
)
from repro.plan.scheduling import estimate_selectivities, selectivity_order


def music_graph():
    """The §5 example graph: persons like songs from bands."""
    builder = GraphBuilder()
    persons = [
        builder.add_vertex(label="person",
                           gender="female" if i % 2 else "male")
        for i in range(20)
    ]
    songs = [
        builder.add_vertex(label="song",
                           style="rock" if i % 4 == 0 else "pop")
        for i in range(10)
    ]
    bands = [
        builder.add_vertex(label="band", name="band%d" % i)
        for i in range(5)
    ]
    for i, person in enumerate(persons):
        builder.add_edge(person, songs[i % len(songs)], label="likes")
    for i, song in enumerate(songs):
        builder.add_edge(song, bands[i % len(bands)], label="from")
    return builder.build()


PAPER_QUERY = (
    'SELECT person, band WHERE '
    '(person)-[:likes]->(song)-[:from]->(band), '
    'person.gender = "female", song.style = "rock", '
    'band.name = "band1"'
)


class TestSelectivityEstimation:
    def test_equality_on_rare_value_scores_low(self):
        graph = music_graph()
        query = parse_and_validate(PAPER_QUERY)
        scores = estimate_selectivities(query, graph)
        # band.name = "band1" matches exactly one of 35 vertices.
        assert scores["band"] < scores["song"] < scores["person"]

    def test_label_contributes(self):
        graph = music_graph()
        query = parse_and_validate(
            "SELECT b WHERE (a)-[]->(b:band)"
        )
        scores = estimate_selectivities(query, graph)
        assert scores["b"] < scores["a"]

    def test_id_equality_is_most_selective(self):
        graph = music_graph()
        query = parse_and_validate(
            "SELECT a WHERE (a WITH id() = 3)-[]->(b)"
        )
        scores = estimate_selectivities(query, graph)
        assert scores["a"] == 1.0 / graph.num_vertices

    def test_range_filter_halves(self):
        graph = music_graph()
        query = parse_and_validate("SELECT a WHERE (a)-[]->(b), a.id() < 5")
        scores = estimate_selectivities(query, graph)
        assert scores["a"] == 0.5


class TestOrdering:
    def test_paper_example_starts_from_band(self):
        """§5: 'we would prefer to start by matching the vertex band'."""
        graph = music_graph()
        query = parse_and_validate(PAPER_QUERY)
        order = selectivity_order(query, graph)
        assert order[0] == "band"
        # Connectivity-first growth: song joins before person.
        assert order == ["band", "song", "person"]

    def test_scheduled_plan_does_less_work(self):
        graph = music_graph()
        naive = plan_query(PAPER_QUERY, graph)
        scheduled = plan_query(
            PAPER_QUERY, graph,
            PlannerOptions(scheduling=SchedulingPolicy.SELECTIVITY),
        )
        assert naive.stages[0].var == "person"
        assert scheduled.stages[0].var == "band"

    def test_order_is_permutation(self):
        graph = music_graph()
        query = parse_and_validate(
            "SELECT a WHERE (a)-[]->(b)-[]->(c), (d)"
        )
        order = selectivity_order(query, graph)
        assert sorted(order) == sorted(query.vertex_vars())

    def test_explicit_order_wins_over_policy(self):
        graph = music_graph()
        plan = plan_query(
            PAPER_QUERY, graph,
            PlannerOptions(
                scheduling=SchedulingPolicy.SELECTIVITY,
                vertex_order=["song", "person", "band"],
            ),
        )
        assert plan.stages[0].var == "song"
