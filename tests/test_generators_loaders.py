"""Unit tests for graph generators and I/O."""

import pytest

from repro.graph import (
    chain_graph,
    complete_graph,
    graph_from_dict,
    graph_to_dict,
    load_edge_list,
    load_json,
    power_law_graph,
    save_edge_list,
    save_json,
    star_graph,
    uniform_random_graph,
)
from repro.errors import GraphError


class TestGenerators:
    def test_uniform_shape(self):
        graph = uniform_random_graph(50, 200, seed=9)
        assert graph.num_vertices == 50
        assert graph.num_edges == 200

    def test_uniform_deterministic(self):
        first = uniform_random_graph(30, 90, seed=4)
        second = uniform_random_graph(30, 90, seed=4)
        assert [tuple(first.out_neighbors(v)) for v in first.vertices()] == \
            [tuple(second.out_neighbors(v)) for v in second.vertices()]

    def test_uniform_properties(self):
        graph = uniform_random_graph(20, 40, seed=2, num_types=3)
        for vertex in graph.vertices():
            assert 0 <= graph.vertex_prop("type", vertex) < 3
        for edge in range(graph.num_edges):
            assert 0.0 <= graph.edge_prop("weight", edge) < 1.0
            assert graph.edge_label_name(edge) == "linked"

    def test_chain(self):
        graph = chain_graph(5)
        assert graph.num_edges == 4
        for index in range(4):
            assert graph.has_edge(index, index + 1)
        assert not graph.has_edge(4, 0)

    def test_chain_with_props(self):
        graph = chain_graph(3, age=[10, 20, 30])
        assert graph.vertex_prop("age", 1) == 20

    def test_star_out(self):
        graph = star_graph(6, direction="out")
        assert graph.out_degree(0) == 6
        assert graph.in_degree(0) == 0

    def test_star_in(self):
        graph = star_graph(6, direction="in")
        assert graph.in_degree(0) == 6

    def test_complete(self):
        graph = complete_graph(4)
        assert graph.num_edges == 12
        assert not graph.has_edge(2, 2)

    def test_power_law_skew(self):
        graph = power_law_graph(100, 500, seed=1)
        assert graph.num_edges == 500
        degrees = sorted(
            (graph.out_degree(v) for v in graph.vertices()), reverse=True
        )
        # The hottest vertex should carry far more than the mean degree.
        assert degrees[0] > 5 * (500 / 100)


class TestEdgeListIO:
    def test_roundtrip(self, tmp_path, random_graph):
        path = tmp_path / "graph.el"
        save_edge_list(random_graph, path)
        loaded = load_edge_list(path)
        assert loaded.num_vertices == random_graph.num_vertices
        assert loaded.num_edges == random_graph.num_edges
        for vertex in random_graph.vertices():
            assert list(loaded.out_neighbors(vertex)) == \
                list(random_graph.out_neighbors(vertex))

    def test_labels_roundtrip(self, tmp_path, social_graph):
        path = tmp_path / "graph.el"
        save_edge_list(social_graph, path)
        loaded = load_edge_list(path)
        for edge in range(social_graph.num_edges):
            src, dst = social_graph.edge_endpoints(edge)
            kept = [
                loaded.edge_label_name(e) for e in loaded.edges_between(src, dst)
            ]
            assert social_graph.edge_label_name(edge) in kept

    def test_comments_and_blank_lines(self, tmp_path):
        path = tmp_path / "g.el"
        path.write_text("# header\n\n0 1 friend\n1 2\n")
        graph = load_edge_list(path)
        assert graph.num_edges == 2
        assert graph.num_vertices == 3

    def test_malformed_line(self, tmp_path):
        path = tmp_path / "bad.el"
        path.write_text("0 1 x y z\n")
        with pytest.raises(GraphError):
            load_edge_list(path)


class TestJsonIO:
    def test_roundtrip_with_properties(self, tmp_path, social_graph):
        path = tmp_path / "graph.json"
        save_json(social_graph, path)
        loaded = load_json(path)
        assert loaded.num_vertices == social_graph.num_vertices
        assert loaded.num_edges == social_graph.num_edges
        for vertex in social_graph.vertices():
            assert loaded.vertex_prop("age", vertex) == \
                social_graph.vertex_prop("age", vertex)
            assert loaded.vertex_label_name(vertex) == \
                social_graph.vertex_label_name(vertex)

    def test_dict_conversion(self, social_graph):
        data = graph_to_dict(social_graph)
        assert len(data["vertices"]) == social_graph.num_vertices
        rebuilt = graph_from_dict(data)
        assert rebuilt.num_edges == social_graph.num_edges
