"""Unit tests for graph value types and the label dictionary."""

import pytest

from repro.errors import PropertyTypeError
from repro.graph.types import (
    NO_LABEL,
    Direction,
    LabelDictionary,
    PropertyType,
)


class TestDirection:
    def test_reverse(self):
        assert Direction.OUT.reverse() is Direction.IN
        assert Direction.IN.reverse() is Direction.OUT


class TestPropertyTypeInfer:
    def test_bool_before_int(self):
        # bool subclasses int; inference must not confuse them.
        assert PropertyType.infer(True) is PropertyType.BOOLEAN
        assert PropertyType.infer(0) is PropertyType.LONG

    def test_infer_all(self):
        assert PropertyType.infer(3) is PropertyType.LONG
        assert PropertyType.infer(3.5) is PropertyType.DOUBLE
        assert PropertyType.infer("x") is PropertyType.STRING

    def test_infer_rejects_unknown(self):
        with pytest.raises(PropertyTypeError):
            PropertyType.infer([1, 2])


class TestPropertyTypeCoerce:
    def test_long_rejects_bool_and_float(self):
        with pytest.raises(PropertyTypeError):
            PropertyType.LONG.coerce(True)
        with pytest.raises(PropertyTypeError):
            PropertyType.LONG.coerce(1.5)

    def test_double_widens_int(self):
        assert PropertyType.DOUBLE.coerce(3) == 3.0
        assert isinstance(PropertyType.DOUBLE.coerce(3), float)

    def test_double_rejects_bool(self):
        with pytest.raises(PropertyTypeError):
            PropertyType.DOUBLE.coerce(True)

    def test_string_rejects_int(self):
        with pytest.raises(PropertyTypeError):
            PropertyType.STRING.coerce(5)

    def test_boolean_strict(self):
        assert PropertyType.BOOLEAN.coerce(False) is False
        with pytest.raises(PropertyTypeError):
            PropertyType.BOOLEAN.coerce(1)

    def test_defaults(self):
        assert PropertyType.LONG.default() == 0
        assert PropertyType.DOUBLE.default() == 0.0
        assert PropertyType.STRING.default() == ""
        assert PropertyType.BOOLEAN.default() is False


class TestLabelDictionary:
    def test_intern_is_idempotent(self):
        labels = LabelDictionary()
        first = labels.intern("friend")
        second = labels.intern("friend")
        assert first == second
        assert len(labels) == 1

    def test_lookup_unknown_returns_none(self):
        labels = LabelDictionary()
        labels.intern("a")
        assert labels.lookup("a") == 0
        assert labels.lookup("missing") is None

    def test_lookup_never_collides_with_no_label(self):
        labels = LabelDictionary()
        assert labels.lookup("anything") is not NO_LABEL

    def test_name_roundtrip(self):
        labels = LabelDictionary()
        ids = [labels.intern(name) for name in ("x", "y", "z")]
        assert [labels.name(i) for i in ids] == ["x", "y", "z"]
        assert labels.names() == ["x", "y", "z"]
