"""Tests for the CFG/dataflow framework and the v2 rule packs.

Split from ``test_analysis.py``: everything here exercises behavior
that only exists because guard/type/reservation facts flow over a real
control-flow graph — domination through try/finally, while/else, early
returns, nested scopes — plus the RPR006/RPR007/RPR009 rule packs, the
RPR008 handler cross-check, and the v2 runner surface (``--diff``,
``--select``, ``--severity``, SARIF, ``--prune-baseline``).  The
mutation tests follow the house style: copy a real source verbatim,
break one invariant, and require the analyzer to flip non-zero.
"""

import json
import subprocess
import textwrap
from pathlib import Path

import pytest

from repro.analysis import analyze, load_baseline, write_baseline
from repro.analysis.cfg import build_cfg
from repro.analysis.dataflow import iter_scopes
from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_REPRO = REPO_ROOT / "src" / "repro"


def write_package(tmp_path, files):
    """Write fixture modules (with the ``__init__.py`` chain) and
    return the scan root."""
    for rel, source in files.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        directory = target.parent
        while directory != tmp_path:
            init = directory / "__init__.py"
            if not init.exists():
                init.write_text("")
            directory = directory.parent
        target.write_text(textwrap.dedent(source))
    return tmp_path


def rules_of(result):
    return [finding.rule for finding in result.findings]


def runtime_module(source):
    return {"repro/runtime/fixture.py": source}


# ----------------------------------------------------------------------
# CFG construction basics
# ----------------------------------------------------------------------

class TestCfg:
    def test_scopes_are_separate(self):
        import ast
        tree = ast.parse(
            "def outer():\n"
            "    def inner():\n"
            "        pass\n"
            "class C:\n"
            "    def method(self):\n"
            "        pass\n"
        )
        names = []
        for scope, _body in iter_scopes(tree):
            names.append(getattr(scope, "name", "<module>"))
        assert names == ["<module>", "outer", "C", "inner", "method"]

    def test_while_true_has_no_false_exit(self):
        import ast
        tree = ast.parse(
            "while True:\n"
            "    if done():\n"
            "        break\n"
        )
        cfg = build_cfg(tree.body)
        for block in cfg.blocks:
            for _succ, polarity, test in block.succ:
                if polarity is False:
                    assert not (isinstance(test, ast.Constant)
                                and test.value)

    def test_unreachable_code_still_built(self):
        import ast
        tree = ast.parse(
            "def f():\n"
            "    return 1\n"
            "    leftover()\n"
        )
        _scope, body = list(iter_scopes(tree))[1]
        cfg = build_cfg(body)
        lines = {
            getattr(node, "lineno", None)
            for block in cfg.blocks for _kind, node in block.elems
        }
        # The dead call after the return is still in some block, so
        # rules scan it (dead code assumes no guards hold).
        assert 3 in lines


# ----------------------------------------------------------------------
# RPR002 guard domination over the CFG (the tentpole rewrite)
# ----------------------------------------------------------------------

class TestGuardDataflow:
    def test_guard_survives_try_finally(self, tmp_path):
        root = write_package(tmp_path, runtime_module("""\
            class Worker:
                def step(self, frame):
                    if self.trace is not None:
                        try:
                            frame.run()
                        finally:
                            self.trace.emit(frame)
            """))
        assert analyze([root]).findings == []

    def test_guard_dominates_exception_handler(self, tmp_path):
        root = write_package(tmp_path, runtime_module("""\
            class Worker:
                def step(self, frame):
                    if self.trace is None:
                        return
                    try:
                        frame.run()
                    except KeyError:
                        self.trace.emit(frame)
            """))
        assert analyze([root]).findings == []

    def test_conditional_early_return_guards(self, tmp_path):
        root = write_package(tmp_path, runtime_module("""\
            class Worker:
                def step(self, frame):
                    if self.telemetry is None:
                        return frame.run()
                    frame.run()
                    self.telemetry.observe("steps", 1)
            """))
        assert analyze([root]).findings == []

    def test_guard_lost_at_join(self, tmp_path):
        # Guarded on the true branch only: the join after the `if`
        # intersects away the guard, so the trailing call is unguarded.
        root = write_package(tmp_path, runtime_module("""\
            class Worker:
                def step(self, frame, fast):
                    if self.trace is not None:
                        self.trace.emit(frame)
                    self.trace.emit(frame)
            """))
        result = analyze([root])
        assert rules_of(result) == ["RPR002"]
        assert result.findings[0].line == 5

    def test_loop_body_invalidation_reaches_exit(self, tmp_path):
        # The loop body reassigns the handle, so the back edge kills
        # the pre-loop guard: the call after the loop is unguarded on
        # the iterated path.
        root = write_package(tmp_path, runtime_module("""\
            class Worker:
                def drain(self, frames):
                    if self.trace is None:
                        return
                    for frame in frames:
                        self.trace = frame.tracer()
                    self.trace.emit(frames)
            """))
        result = analyze([root])
        assert rules_of(result) == ["RPR002"]

    def test_while_else_guarded(self, tmp_path):
        root = write_package(tmp_path, runtime_module("""\
            class Worker:
                def drain(self, queue):
                    if self.trace is None:
                        return
                    while queue:
                        queue.pop()
                    else:
                        self.trace.emit(queue)
            """))
        assert analyze([root]).findings == []

    def test_nested_def_does_not_inherit_guard(self, tmp_path):
        # The guard holds in the enclosing scope, but the nested
        # function runs later, when the handle may have changed: its
        # body must guard for itself.
        root = write_package(tmp_path, runtime_module("""\
            class Worker:
                def make_callback(self, frame):
                    if self.trace is None:
                        return None
                    def callback():
                        self.trace.emit(frame)
                    return callback
            """))
        result = analyze([root])
        assert rules_of(result) == ["RPR002"]
        assert result.findings[0].symbol == \
            "Worker.make_callback.callback"

    def test_nested_def_guards_for_itself(self, tmp_path):
        root = write_package(tmp_path, runtime_module("""\
            class Worker:
                def make_callback(self, frame):
                    def callback():
                        if self.trace is not None:
                            self.trace.emit(frame)
                    return callback
            """))
        assert analyze([root]).findings == []

    def test_assert_guard_still_works(self, tmp_path):
        root = write_package(tmp_path, runtime_module("""\
            class Worker:
                def step(self, frame):
                    assert self.trace is not None
                    self.trace.emit(frame)
            """))
        assert analyze([root]).findings == []

    def test_finally_return_path_checked(self, tmp_path):
        # The call in the finally body runs on the early-return path
        # too; no guard holds there on either path.
        root = write_package(tmp_path, runtime_module("""\
            class Worker:
                def step(self, frame):
                    try:
                        if frame.done:
                            return 0
                        return frame.run()
                    finally:
                        self.trace.emit(frame)
            """))
        result = analyze([root])
        assert rules_of(result) == ["RPR002"]


# ----------------------------------------------------------------------
# RPR006 — iteration-order determinism
# ----------------------------------------------------------------------

class TestIterationOrderRule:
    def test_effectful_loop_over_set_flagged(self, tmp_path):
        root = write_package(tmp_path, runtime_module("""\
            class Stage:
                def fanout(self, ctx, neighbors, vertex, payload):
                    higher = {v for v in neighbors if v > vertex}
                    for target in higher:
                        ctx.send(target, payload)
            """))
        result = analyze([root])
        assert rules_of(result) == ["RPR006"]
        finding = result.findings[0]
        assert finding.pattern == "set-iter:higher"
        assert "sorted(higher)" in finding.message

    def test_sorted_wrapper_clean(self, tmp_path):
        root = write_package(tmp_path, runtime_module("""\
            class Stage:
                def fanout(self, ctx, neighbors, vertex, payload):
                    higher = {v for v in neighbors if v > vertex}
                    for target in sorted(higher):
                        ctx.send(target, payload)
            """))
        assert analyze([root]).findings == []

    def test_pure_loop_body_clean(self, tmp_path):
        root = write_package(tmp_path, runtime_module("""\
            class Stage:
                def total(self, weights):
                    seen = set(weights)
                    acc = 0
                    for w in seen:
                        acc += w
                    return acc
            """))
        assert analyze([root]).findings == []

    def test_set_from_helper_method_flagged(self, tmp_path):
        root = write_package(tmp_path, runtime_module("""\
            class Stage:
                def _targets(self, ctx):
                    out = set()
                    for t in ctx.out_neighbors():
                        out.add(t)
                    return out

                def fanout(self, ctx, payload):
                    targets = self._targets(ctx)
                    for target in targets:
                        ctx.send(target, payload)
            """))
        result = analyze([root])
        assert rules_of(result) == ["RPR006"]
        assert result.findings[0].pattern == "set-iter:targets"

    def test_set_keyed_dict_view_flagged(self, tmp_path):
        root = write_package(tmp_path, runtime_module("""\
            class Stage:
                def fanout(self, ctx, members, payload):
                    pending = dict.fromkeys(set(members), 0)
                    for target in pending.keys():
                        ctx.send(target, payload)
            """))
        result = analyze([root])
        assert rules_of(result) == ["RPR006"]
        assert "set-keyed dict view" in result.findings[0].message

    def test_rebind_to_list_clears_set_fact(self, tmp_path):
        root = write_package(tmp_path, runtime_module("""\
            class Stage:
                def fanout(self, ctx, members, payload):
                    targets = set(members)
                    targets = list(targets)
                    for target in targets:
                        ctx.send(target, payload)
            """))
        assert analyze([root]).findings == []

    def test_branch_join_is_must_analysis(self, tmp_path):
        # Only one branch produces a set: after the join, the iterable
        # is not *provably* a set, so no finding (the rule favors
        # precision over recall).
        root = write_package(tmp_path, runtime_module("""\
            class Stage:
                def fanout(self, ctx, members, payload, pin):
                    if pin:
                        targets = sorted(members)
                    else:
                        targets = set(members)
                    for target in targets:
                        ctx.send(target, payload)
            """))
        assert analyze([root]).findings == []

    def test_metric_charge_counts_as_effect(self, tmp_path):
        root = write_package(tmp_path, runtime_module("""\
            class Stage:
                def account(self, members):
                    active = set(members)
                    for member in active:
                        self.metrics.cur_live_frames += 1
            """))
        result = analyze([root])
        assert rules_of(result) == ["RPR006"]

    def test_suppression_comment_honored(self, tmp_path):
        root = write_package(tmp_path, runtime_module("""\
            class Stage:
                def fanout(self, ctx, members, payload):
                    targets = set(members)
                    # order-insensitive: commutative accumulate
                    # repro: allow(RPR006)
                    for target in targets:
                        ctx.send(target, payload)
            """))
        result = analyze([root])
        assert result.findings == []
        assert result.suppressed == 1

    def test_mutation_unsorting_triangle_count_flags(self, tmp_path):
        source = (SRC_REPRO / "analytics" / "algorithms.py").read_text()
        assert "for target in sorted(higher):" in source
        mutated = source.replace("for target in sorted(higher):",
                                 "for target in higher:")
        root = write_package(tmp_path, {
            "repro/analytics/algorithms.py": mutated,
        })
        result = analyze([root])
        assert "RPR006" in rules_of(result)
        assert any(f.pattern == "set-iter:higher"
                   for f in result.findings)


# ----------------------------------------------------------------------
# RPR007 — reservation pairing
# ----------------------------------------------------------------------

class TestReservationPairingRule:
    def test_leak_on_early_return_flagged(self, tmp_path):
        root = write_package(tmp_path, runtime_module("""\
            class Machine:
                def push(self, stage, dest, want):
                    slots = self.flow.reserve(stage, dest, want)
                    if self.queue.full():
                        return False
                    self.queue.put(slots)
                    self.flow.release(stage, dest)
                    return True
            """))
        result = analyze([root])
        assert rules_of(result) == ["RPR007"]
        finding = result.findings[0]
        assert finding.pattern == "reserve-leak:self.flow.reserve"
        assert finding.line == 3

    def test_release_on_every_path_clean(self, tmp_path):
        root = write_package(tmp_path, runtime_module("""\
            class Machine:
                def push(self, stage, dest, want):
                    slots = self.flow.reserve(stage, dest, want)
                    if self.queue.full():
                        self.flow.release(stage, dest)
                        return False
                    self.queue.put(slots)
                    self.flow.release(stage, dest)
                    return True
            """))
        assert analyze([root]).findings == []

    def test_zero_grant_branch_clean(self, tmp_path):
        # `slots == 0` proves nothing is held on the early return.
        root = write_package(tmp_path, runtime_module("""\
            class Machine:
                def push(self, stage, dest, want):
                    slots = self.flow.reserve(stage, dest, want)
                    if slots == 0:
                        return False
                    self.queue.put(slots)
                    self.flow.release(stage, dest)
                    return True
            """))
        assert analyze([root]).findings == []

    def test_truthiness_refinement_clean(self, tmp_path):
        root = write_package(tmp_path, runtime_module("""\
            class Machine:
                def push(self, stage, dest, want):
                    slots = self.flow.reserve(stage, dest, want)
                    if slots:
                        self.queue.put(slots)
                        self.flow.release(stage, dest)
                    return True
            """))
        assert analyze([root]).findings == []

    def test_ownership_transfer_via_return_clean(self, tmp_path):
        root = write_package(tmp_path, runtime_module("""\
            class Machine:
                def grab(self, stage, dest, want):
                    slots = self.flow.reserve(stage, dest, want)
                    return slots * self.bulk
            """))
        assert analyze([root]).findings == []

    def test_raise_path_exempt(self, tmp_path):
        root = write_package(tmp_path, runtime_module("""\
            class Machine:
                def push(self, stage, dest, want):
                    slots = self.flow.reserve(stage, dest, want)
                    if self.aborted:
                        raise RuntimeError("abort snapshots flow state")
                    self.queue.put(slots)
                    self.flow.release(stage, dest)
            """))
        assert analyze([root]).findings == []

    def test_prebound_alias_tracked(self, tmp_path):
        # The kernels prebind `reserve = rt.reserve_items`; the alias
        # pre-pass must still see the grant.
        root = write_package(tmp_path, runtime_module("""\
            class Machine:
                def push(self, rt, stage, dest, want):
                    reserve = rt.reserve_items
                    rem = reserve(stage, dest, want)
                    if rem > 0:
                        self.queue.put(rem)
                        return True
                    return False
            """))
        result = analyze([root])
        assert rules_of(result) == ["RPR007"]
        assert result.findings[0].pattern == "reserve-leak:reserve"

    def test_container_rehoming_tracked(self, tmp_path):
        # The kernel idiom: the grant moves into a per-dest dict which
        # `end_batch` then releases.
        root = write_package(tmp_path, runtime_module("""\
            class Machine:
                def push(self, rt, stage, dests, want):
                    resv = {}
                    for dest in dests:
                        rem = rt.reserve_items(stage, dest, want)
                        if rem > 0:
                            resv[dest] = rem - 1
                    if resv:
                        rt.end_batch(stage, resv)
                    return True
            """))
        assert analyze([root]).findings == []

    def test_mutation_dropping_return_transfer_flags(self, tmp_path):
        source = (SRC_REPRO / "runtime" / "machine.py").read_text()
        needle = "return room + slots * bulk"
        assert needle in source
        mutated = source.replace(needle, "return room")
        root = write_package(tmp_path, {
            "repro/runtime/machine.py": mutated,
        })
        result = analyze([root])
        assert any(
            f.rule == "RPR007"
            and f.pattern == "reserve-leak:self.flow.reserve"
            for f in result.findings
        )

    def test_real_machine_module_self_hosts_clean(self, tmp_path):
        source = (SRC_REPRO / "runtime" / "machine.py").read_text()
        root = write_package(tmp_path, {
            "repro/runtime/machine.py": source,
        })
        result = analyze([root])
        assert not any(f.rule == "RPR007" for f in result.findings)


# ----------------------------------------------------------------------
# RPR009 — cross-scope isolation
# ----------------------------------------------------------------------

class TestCrossScopeIsolationRule:
    def test_scope_write_through_service_flagged(self, tmp_path):
        root = write_package(tmp_path, {
            "repro/service/scope_fixture.py": """\
                class QueryScope:
                    def finish(self, rows):
                        self.service.last_result = rows
                """,
        })
        result = analyze([root])
        assert rules_of(result) == ["RPR009"]
        assert result.findings[0].pattern == \
            "scope-write:self.service.last_result"

    def test_scope_container_mutation_flagged(self, tmp_path):
        root = write_package(tmp_path, {
            "repro/service/scope_fixture.py": """\
                class QueryScope:
                    def register(self):
                        self._service.registry.append(self.query_id)
                """,
        })
        result = analyze([root])
        assert rules_of(result) == ["RPR009"]
        assert result.findings[0].pattern == \
            "scope-mutate:self._service.registry.append"

    def test_scheduler_call_is_sanctioned(self, tmp_path):
        root = write_package(tmp_path, {
            "repro/service/scope_fixture.py": """\
                class QueryScope:
                    def finish(self, rows):
                        self.service.retire(self.query_id, rows)
                        self.service.submit(self.next_query)
                """,
        })
        assert analyze([root]).findings == []

    def test_module_level_mutable_flagged(self, tmp_path):
        root = write_package(tmp_path, runtime_module("""\
            ACTIVE_SCOPES = []

            def register(scope):
                ACTIVE_SCOPES.append(scope)
            """))
        result = analyze([root])
        assert rules_of(result) == ["RPR009"]
        assert result.findings[0].pattern == \
            "module-mutable:ACTIVE_SCOPES"

    def test_module_level_frozen_clean(self, tmp_path):
        root = write_package(tmp_path, runtime_module("""\
            STAGES = ("scan", "expand", "output")
            LIMIT = 64
            """))
        assert analyze([root]).findings == []


# ----------------------------------------------------------------------
# RPR008 — the handler cross-check half (pure AST, no engine import)
# ----------------------------------------------------------------------

class TestKernelAuditCrossCheck:
    def test_unmodeled_handler_counter_is_drift(self, tmp_path):
        # A scanned machine.py whose route() grows a counter family the
        # audit table does not model must fail the audit itself.
        root = write_package(tmp_path, {
            "repro/runtime/kernels.py": "KERNEL_VERSION = 2\n",
            "repro/runtime/machine.py": """\
                class Machine:
                    def route(self, comp, stage, dest, ctx):
                        if self.profiler is not None:
                            self.profiler.rerouted[stage] += 1
                        return True
                """,
        })
        result = analyze([root])
        drift = [f for f in result.findings
                 if f.rule == "RPR008" and "audit-drift" in f.pattern]
        assert drift
        assert "rerouted" in drift[0].message

    def test_modeled_handlers_no_drift(self, tmp_path):
        root = write_package(tmp_path, {
            "repro/runtime/kernels.py": "KERNEL_VERSION = 2\n",
            "repro/runtime/machine.py": """\
                class Machine:
                    def route(self, comp, stage, dest, ctx):
                        if self.profiler is not None:
                            self.profiler.emitted[stage] += 1
                        return True
                """,
        })
        result = analyze([root])
        assert not any("audit-drift" in f.pattern
                       for f in result.findings)

    def test_real_tree_audit_is_clean(self):
        # The full self-host including the dynamic compile-audit runs in
        # CI over src/repro; here just pin the real handler modules
        # against the cross-check table.
        root = SRC_REPRO
        result = analyze(
            [str(root / "runtime"), str(root / "bench.py")],
            baseline_path=str(REPO_ROOT / "lint-baseline.json"),
        )
        assert not any(f.rule == "RPR008" for f in result.findings)


# ----------------------------------------------------------------------
# Fingerprints: stable under line shift, invalidated by edits
# ----------------------------------------------------------------------

class TestSnippetFingerprints:
    FIXTURE = {
        "repro/runtime/leaky.py": """\
            import time

            def stamp():
                return time.time()
            """,
    }

    def test_line_shift_keeps_baseline_match(self, tmp_path):
        root = write_package(tmp_path, self.FIXTURE)
        result = analyze([root])
        assert rules_of(result) == ["RPR001"]
        baseline = tmp_path / "baseline.json"
        write_baseline(result.findings, str(baseline))
        entries = load_baseline(str(baseline))
        assert entries[0].snippet_hash is not None

        # Shift the flagged call down: fingerprint must still match.
        target = tmp_path / "repro/runtime/leaky.py"
        target.write_text("import time\n\n\n# shifted\n\n" +
                          "def stamp():\n    return time.time()\n")
        shifted = analyze([root], baseline_path=str(baseline))
        assert shifted.findings == []
        assert shifted.baselined == 1

    def test_editing_flagged_code_resurfaces(self, tmp_path):
        # RPR006 anchors at the For node, so the snippet hash covers the
        # whole loop: editing the body invalidates the baseline entry
        # even though rule/path/symbol/pattern all still match.
        root = write_package(tmp_path, {
            "repro/runtime/fanout.py": """\
                class Stage:
                    def fanout(self, ctx, members, payload):
                        targets = set(members)
                        for target in targets:
                            ctx.send(target, payload)
                """,
        })
        result = analyze([root])
        assert rules_of(result) == ["RPR006"]
        baseline = tmp_path / "baseline.json"
        write_baseline(result.findings, str(baseline))
        assert analyze([root],
                       baseline_path=str(baseline)).findings == []

        target = tmp_path / "repro/runtime/fanout.py"
        target.write_text(target.read_text().replace(
            "ctx.send(target, payload)",
            "ctx.send(target, (payload, target))",
        ))
        edited = analyze([root], baseline_path=str(baseline))
        assert rules_of(edited) == ["RPR006"]
        assert edited.baselined == 0
        assert len(edited.stale_baseline) == 1


# ----------------------------------------------------------------------
# Runner surface: --select / --severity / --diff / SARIF / prune
# ----------------------------------------------------------------------

LEAKY = {
    "repro/runtime/leaky.py": """\
        import time

        def stamp():
            return time.time()
        """,
    "repro/runtime/fanout.py": """\
        class Stage:
            def fanout(self, ctx, members, payload):
                targets = set(members)
                for target in targets:
                    ctx.send(target, payload)
        """,
}


class TestRunnerSurface:
    def test_select_restricts_rules(self, tmp_path, capsys):
        root = write_package(tmp_path, LEAKY)
        assert main(["lint", str(root), "--select", "RPR006",
                     "--no-baseline", "--format", "json"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert {f["rule"] for f in report["findings"]} == {"RPR006"}

    def test_select_unknown_rule_rejected(self, tmp_path):
        root = write_package(tmp_path, LEAKY)
        with pytest.raises(SystemExit):
            main(["lint", str(root), "--select", "RPR999"])

    def test_severity_override_changes_gate(self, tmp_path, capsys):
        root = write_package(tmp_path, LEAKY)
        # Downgraded to warning, the default --fail-on error passes...
        assert main(["lint", str(root), "--no-baseline",
                     "--severity", "RPR001=warning",
                     "--severity", "RPR006=warning"]) == 0
        # ... and --fail-on warning still gates.
        assert main(["lint", str(root), "--no-baseline",
                     "--severity", "RPR001=warning",
                     "--severity", "RPR006=warning",
                     "--fail-on", "warning"]) == 1
        capsys.readouterr()

    def test_severity_bad_spec_rejected(self, tmp_path):
        root = write_package(tmp_path, LEAKY)
        with pytest.raises(SystemExit):
            main(["lint", str(root), "--severity", "RPR001=fatal"])

    def test_all_scopes_applies_rules_everywhere(self, tmp_path, capsys):
        root = write_package(tmp_path, {
            "tests_fixture/test_timing.py": """\
                import time

                def test_speed():
                    return time.time()
                """,
        })
        assert main(["lint", str(root), "--select", "RPR001",
                     "--no-baseline"]) == 0
        assert main(["lint", str(root), "--select", "RPR001",
                     "--all-scopes", "--no-baseline"]) == 1
        capsys.readouterr()

    def test_sarif_report_shape(self, tmp_path, capsys):
        root = write_package(tmp_path, LEAKY)
        sarif_path = tmp_path / "report.sarif"
        assert main(["lint", str(root), "--no-baseline",
                     "--format", "sarif",
                     "--sarif-out", str(sarif_path)]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["version"] == "2.1.0"
        run = document["runs"][0]
        rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
        assert rule_ids == ["RPR001", "RPR002", "RPR003", "RPR004",
                           "RPR005", "RPR006", "RPR007", "RPR008",
                           "RPR009"]
        results = run["results"]
        assert {r["ruleId"] for r in results} == {"RPR001", "RPR006"}
        for entry in results:
            location = entry["locations"][0]["physicalLocation"]
            assert location["artifactLocation"]["uri"].startswith("repro/")
            assert location["region"]["startLine"] >= 1
            assert entry["partialFingerprints"]["reproLint/v1"]
        assert json.loads(sarif_path.read_text()) == document

    def test_prune_baseline_drops_stale(self, tmp_path, capsys):
        root = write_package(tmp_path, LEAKY)
        baseline = tmp_path / "lint-baseline.json"
        assert main(["lint", str(root),
                     "--write-baseline", str(baseline)]) == 0
        assert len(load_baseline(str(baseline))) == 2

        # Fix one of the two findings, then prune: exactly one entry
        # must drop and the other must survive verbatim.
        (tmp_path / "repro/runtime/leaky.py").write_text(
            "def stamp(tick):\n    return tick\n")
        assert main(["lint", str(root), "--baseline", str(baseline),
                     "--prune-baseline"]) == 0
        out = capsys.readouterr().out
        assert "pruned 1 stale entry" in out
        remaining = load_baseline(str(baseline))
        assert len(remaining) == 1
        assert remaining[0].rule == "RPR006"

    def test_prune_baseline_requires_full_scan(self, tmp_path):
        root = write_package(tmp_path, LEAKY)
        baseline = tmp_path / "lint-baseline.json"
        assert main(["lint", str(root),
                     "--write-baseline", str(baseline)]) == 0
        with pytest.raises(SystemExit):
            main(["lint", str(root), "--baseline", str(baseline),
                  "--prune-baseline", "--select", "RPR001"])

    def test_diff_reports_changed_files_only(self, tmp_path, capsys,
                                             monkeypatch):
        root = write_package(tmp_path, LEAKY)
        git = ["git", "-C", str(tmp_path), "-c", "user.name=t",
               "-c", "user.email=t@t"]
        subprocess.run(git[:3] + ["init", "-q"], check=True)
        subprocess.run(git[:3] + ["add", "-A"], check=True)
        subprocess.run(git + ["commit", "-qm", "seed"], check=True)
        # Touch only the RPR006 fixture.
        fanout = tmp_path / "repro/runtime/fanout.py"
        fanout.write_text(fanout.read_text() + "\nEXTRA = 1\n")
        monkeypatch.chdir(tmp_path)
        assert main(["lint", str(root), "--no-baseline",
                     "--diff", "HEAD", "--format", "json"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert {f["rule"] for f in report["findings"]} == {"RPR006"}
        assert {f["path"] for f in report["findings"]} == {
            "repro/runtime/fanout.py"
        }

    def test_diff_bad_ref_rejected(self, tmp_path):
        root = write_package(tmp_path, LEAKY)
        with pytest.raises(SystemExit):
            main(["lint", str(root), "--diff",
                  "no-such-ref-xyzzy", "--no-baseline"])
