"""Tests for bounded variable-length paths (``-/:label{m,n}/->``)."""

from collections import Counter

import numpy as np
import pytest

from repro import ClusterConfig, PgqlValidationError, run_query
from repro.baselines import SharedMemoryEngine
from repro.graph import chain_graph, uniform_random_graph
from repro.pgql import parse, parse_and_validate
from repro.plan.paths import expand_quantified_paths, has_quantified_paths


class TestParsing:
    def test_quantified_edge(self):
        query = parse("SELECT a, b WHERE (a)-/:next{1,3}/->(b)")
        edge = query.paths[0].edges[0]
        assert edge.quantified
        assert edge.label == "next"
        assert (edge.min_hops, edge.max_hops) == (1, 3)
        assert edge.anonymous

    def test_unlabeled_quantified(self):
        query = parse("SELECT a WHERE (a)-/{2,2}/->(b)")
        edge = query.paths[0].edges[0]
        assert edge.label is None
        assert (edge.min_hops, edge.max_hops) == (2, 2)

    def test_reverse_quantified(self):
        from repro.graph.types import Direction

        query = parse("SELECT a WHERE (a)<-/:next{1,2}/-(b)")
        edge = query.paths[0].edges[0]
        assert edge.direction is Direction.IN
        assert edge.quantified

    def test_plain_edges_are_not_quantified(self):
        query = parse("SELECT a WHERE (a)-[:x]->(b)")
        assert not query.paths[0].edges[0].quantified


class TestValidation:
    def test_zero_lower_bound_rejected(self):
        with pytest.raises(PgqlValidationError):
            parse_and_validate("SELECT a WHERE (a)-/{0,2}/->(b)")

    def test_inverted_bounds_rejected(self):
        with pytest.raises(PgqlValidationError):
            parse_and_validate("SELECT a WHERE (a)-/{3,2}/->(b)")

    def test_cap_enforced(self):
        with pytest.raises(PgqlValidationError):
            parse_and_validate("SELECT a WHERE (a)-/{1,99}/->(b)")

    def test_no_aggregates_with_quantified(self):
        with pytest.raises(PgqlValidationError):
            parse_and_validate("SELECT COUNT(*) WHERE (a)-/{1,2}/->(b)")


class TestExpansion:
    def test_expansion_count(self):
        query = parse_and_validate(
            "SELECT a WHERE (a)-/{1,3}/->(b)-/{2,3}/->(c)"
        )
        assert has_quantified_paths(query)
        assert len(expand_quantified_paths(query)) == 3 * 2

    def test_no_quantified_is_identity(self):
        query = parse_and_validate("SELECT a WHERE (a)-[]->(b)")
        assert expand_quantified_paths(query) == [query]

    def test_expansion_chain_lengths(self):
        query = parse_and_validate("SELECT a, b WHERE (a)-/:x{2,4}/->(b)")
        expansions = expand_quantified_paths(query)
        lengths = sorted(len(e.paths[0].edges) for e in expansions)
        assert lengths == [2, 3, 4]
        for expansion in expansions:
            assert all(
                edge.label == "x" for edge in expansion.paths[0].edges
            )
            # Endpoints preserved.
            assert expansion.paths[0].vertices[0].var == "a"
            assert expansion.paths[0].vertices[-1].var == "b"


class TestSemantics:
    def test_chain_distances(self):
        graph = chain_graph(6, label="next")
        result = run_query(
            graph,
            "SELECT a, b WHERE (a)-/:next{2,3}/->(b)",
            ClusterConfig(num_machines=2),
        )
        expected = sorted(
            (a, a + d) for a in range(6) for d in (2, 3) if a + d < 6
        )
        assert sorted(result.rows) == expected

    def test_multiplicity_counts_walks(self):
        """Row multiplicity equals the number of walks (matrix powers)."""
        graph = uniform_random_graph(15, 60, seed=9)
        adjacency = np.zeros((15, 15), dtype=np.int64)
        for edge in range(graph.num_edges):
            src, dst = graph.edge_endpoints(edge)
            adjacency[src, dst] += 1
        walks = adjacency + adjacency @ adjacency  # lengths 1 and 2

        result = run_query(
            graph,
            "SELECT a, b WHERE (a)-/{1,2}/->(b)",
            ClusterConfig(num_machines=3),
        )
        counts = Counter(result.rows)
        for a in range(15):
            for b in range(15):
                assert counts.get((a, b), 0) == walks[a, b]

    def test_distinct_gives_reachability(self):
        graph = chain_graph(5, label="next")
        result = run_query(
            graph,
            "SELECT DISTINCT b WHERE (a WITH id() = 0)-/:next{1,4}/->(b) "
            "ORDER BY b",
            ClusterConfig(num_machines=2),
        )
        assert result.rows == [(1,), (2,), (3,), (4,)]

    def test_engines_agree(self):
        graph = uniform_random_graph(25, 100, seed=13)
        query = (
            "SELECT DISTINCT a, c WHERE (a)-/{1,3}/->(c), a.type = 0 "
            "ORDER BY a, c"
        )
        distributed = run_query(graph, query, ClusterConfig(num_machines=3))
        shared = SharedMemoryEngine(graph).query(query)
        assert distributed.rows == shared.rows

    def test_order_and_limit_across_union(self):
        graph = chain_graph(8, label="next")
        result = run_query(
            graph,
            "SELECT a, b WHERE (a)-/:next{1,3}/->(b) "
            "ORDER BY b DESC, a LIMIT 4",
            ClusterConfig(num_machines=2),
        )
        assert [row[1] for row in result.rows] == [7, 7, 7, 6]

    def test_filters_apply_to_endpoints(self):
        graph = chain_graph(6, label="next", level=[0, 1, 2, 3, 4, 5])
        result = run_query(
            graph,
            "SELECT a, b WHERE (a WITH level < 2)-/:next{1,2}/->"
            "(b WITH level > 3)",
            ClusterConfig(num_machines=2),
        )
        # From 0/1, within 2 hops, landing past level 3: none from 0
        # (max 0+2=2), none from 1 except 1->..: 1+2=3 not >3 — empty.
        assert result.rows == []

    def test_mixed_with_fixed_edges(self):
        graph = chain_graph(6, label="next")
        result = run_query(
            graph,
            "SELECT a, c WHERE (a)-[:next]->(b)-/:next{1,2}/->(c)",
            ClusterConfig(num_machines=2),
        )
        expected = sorted(
            (a, a + 1 + d) for a in range(6) for d in (1, 2)
            if a + 1 + d < 6
        )
        assert sorted(result.rows) == expected

    def test_isomorphism_restricts_to_paths(self):
        """Under isomorphism the expansion's intermediate vertices are
        distinct: walks collapse to simple paths."""
        from repro.graph import GraphBuilder
        from repro.plan import MatchSemantics, PlannerOptions

        builder = GraphBuilder()
        a, b = builder.add_vertex(), builder.add_vertex()
        builder.add_edge(a, b)
        builder.add_edge(b, a)
        graph = builder.build()
        homo = run_query(
            graph,
            "SELECT x, y WHERE (x)-/{3,3}/->(y)",
            ClusterConfig(num_machines=2),
        )
        iso = run_query(
            graph,
            "SELECT x, y WHERE (x)-/{3,3}/->(y)",
            ClusterConfig(num_machines=2),
            options=PlannerOptions(semantics=MatchSemantics.ISOMORPHISM),
        )
        # Walks of length 3 exist (a-b-a-b); simple paths of length 3
        # need 4 distinct vertices, which this graph lacks.
        assert len(homo.rows) == 2
        assert iso.rows == []

    def test_metrics_accumulate(self):
        graph = chain_graph(6, label="next")
        result = run_query(
            graph,
            "SELECT a, b WHERE (a)-/:next{1,3}/->(b)",
            ClusterConfig(num_machines=2),
        )
        single = run_query(
            graph,
            "SELECT a, b WHERE (a)-[:next]->(b)",
            ClusterConfig(num_machines=2),
        )
        assert result.metrics.ticks > single.metrics.ticks
