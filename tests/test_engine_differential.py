"""Differential tests: async engine vs brute-force oracle vs baselines.

Every engine in the repository must agree on every query: the
distributed async engine (across machine counts), the shared-memory
PGX-like engine, the BFT baseline, the join baseline, and the naive
brute-force oracle.
"""

import pytest

from repro import ClusterConfig, PlannerOptions, run_query
from repro.baselines import BftEngine, JoinEngine, SharedMemoryEngine
from repro.graph import uniform_random_graph
from repro.plan import MatchSemantics, SchedulingPolicy

from .oracle import brute_force_rows

QUERIES = [
    "SELECT a, b WHERE (a)-[]->(b)",
    "SELECT a, b WHERE (a WITH type = 1)-[]->(b WITH type = 0)",
    "SELECT a, b, c WHERE (a)-[]->(b)-[]->(c)",
    "SELECT a, b, c WHERE (a)-[]->(b)-[]->(c), a.type = c.type",
    "SELECT a, c, b WHERE (a)-[]->(c)<-[]-(b), a.value < b.value",
    "SELECT a, b WHERE (a)-[]->(b), (b)-[]->(a)",
    "SELECT a, b WHERE (a)<-[]-(b), a.type != b.type",
    "SELECT v, b WHERE (v WITH id() = 3)-[]->(b)",
    "SELECT a, b, c WHERE (a)-[]->(b), (a)-[]->(c), b.value > c.value",
    "SELECT e.weight, a WHERE (a)-[e]->(b), e.weight > 0.7",
    "SELECT a, b WHERE (a)-[:linked]->(b WITH value < 1000)",
    "SELECT a, b, c, d WHERE (a)-[]->(b)-[]->(c)-[]->(d), a.type = 2",
    # Edge-to-edge comparison: e1's weight must be captured at the first
    # hop for the second hop's filter.
    "SELECT a, c WHERE (a)-[e1]->(b)-[e2]->(c), e1.weight < e2.weight",
    # Edge prop used only at output.
    "SELECT e1.weight, e2.weight WHERE (a)-[e1]->(b), (b)-[e2]->(a)",
]


@pytest.fixture(scope="module")
def tiny_graph():
    # Small enough for the V^k brute force on 3-4 variables.
    return uniform_random_graph(14, 60, seed=99, num_types=3,
                                value_range=2_000)


class TestAgainstOracle:
    @pytest.mark.parametrize("query", QUERIES)
    def test_homomorphism(self, tiny_graph, query):
        expected = sorted(brute_force_rows(tiny_graph, query))
        got = sorted(
            run_query(
                tiny_graph, query, ClusterConfig(num_machines=3),
                debug_checks=True,
            ).rows
        )
        assert got == expected

    @pytest.mark.parametrize(
        "semantics",
        [MatchSemantics.ISOMORPHISM, MatchSemantics.INDUCED],
    )
    @pytest.mark.parametrize(
        "query",
        [
            "SELECT a, b, c WHERE (a)-[]->(b)-[]->(c)",
            "SELECT a, b WHERE (a)-[]->(b), (b)-[]->(a)",
            "SELECT a, b, c WHERE (a)-[]->(b), (a)-[]->(c)",
        ],
    )
    def test_strict_semantics(self, tiny_graph, query, semantics):
        expected = sorted(brute_force_rows(tiny_graph, query, semantics))
        got = sorted(
            run_query(
                tiny_graph, query, ClusterConfig(num_machines=3),
                options=PlannerOptions(semantics=semantics),
                debug_checks=True,
            ).rows
        )
        assert got == expected


class TestEnginesAgree:
    @pytest.mark.parametrize("query", QUERIES)
    def test_all_engines(self, tiny_graph, query):
        reference = sorted(SharedMemoryEngine(tiny_graph).query(query).rows)
        async_result = run_query(
            tiny_graph, query, ClusterConfig(num_machines=4),
            debug_checks=True,
        )
        bft_result = BftEngine(
            tiny_graph, ClusterConfig(num_machines=4)
        ).query(query)
        join_result = JoinEngine(tiny_graph).query(query)
        assert sorted(async_result.rows) == reference
        assert sorted(bft_result.rows) == reference
        assert sorted(join_result.rows) == reference

    @pytest.mark.parametrize("query", QUERIES[:6])
    def test_scheduling_does_not_change_answers(self, tiny_graph, query):
        reference = sorted(brute_force_rows(tiny_graph, query))
        got = sorted(
            run_query(
                tiny_graph, query, ClusterConfig(num_machines=3),
                options=PlannerOptions(
                    scheduling=SchedulingPolicy.SELECTIVITY
                ),
                debug_checks=True,
            ).rows
        )
        assert got == reference

    def test_common_neighbor_hop_agrees(self, tiny_graph):
        query = "SELECT a, c, b WHERE (a)-[]->(c)<-[]-(b), a.type = b.type"
        reference = sorted(brute_force_rows(tiny_graph, query))
        got = sorted(
            run_query(
                tiny_graph, query, ClusterConfig(num_machines=4),
                options=PlannerOptions(use_common_neighbors=True),
                debug_checks=True,
            ).rows
        )
        assert got == reference
