"""Unit tests for the PGQL parser."""

import pytest

from repro.errors import PgqlSyntaxError
from repro.graph.types import Direction
from repro.pgql import (
    Aggregate,
    AggregateFunc,
    Binary,
    IdCall,
    LabelCall,
    Literal,
    PropRef,
    VarRef,
    parse,
)


class TestPatterns:
    def test_simple_edge(self):
        query = parse("SELECT a, b WHERE (a)-[:friend]->(b)")
        path = query.paths[0]
        assert [v.var for v in path.vertices] == ["a", "b"]
        edge = path.edges[0]
        assert edge.label == "friend"
        assert edge.direction is Direction.OUT
        assert edge.anonymous

    def test_reverse_edge(self):
        query = parse("SELECT a WHERE (a)<-[e:follows]-(b)")
        edge = query.paths[0].edges[0]
        assert edge.direction is Direction.IN
        assert edge.var == "e"
        assert not edge.anonymous

    def test_arrow_shorthands(self):
        query = parse("SELECT a WHERE (a) -> (b) <- (c)")
        directions = [e.direction for e in query.paths[0].edges]
        assert directions == [Direction.OUT, Direction.IN]

    def test_anonymous_vertices_get_fresh_names(self):
        query = parse("SELECT v WHERE (v)-[]->()-[]->()")
        names = [v.var for v in query.paths[0].vertices]
        assert names[0] == "v"
        assert len(set(names)) == 3
        assert all(name.startswith("$") for name in names[1:])

    def test_vertex_label(self):
        query = parse("SELECT a WHERE (a:person)-[]->(b)")
        assert query.paths[0].vertices[0].label == "person"

    def test_long_path(self):
        query = parse("SELECT a WHERE (a)-[]->(b)-[]->(c)-[]->(d)")
        assert len(query.paths[0].vertices) == 4
        assert len(query.paths[0].edges) == 3

    def test_multiple_paths_and_constraints(self):
        query = parse(
            "SELECT a WHERE (a)-[]->(b), (a)-[]->(c), a.type = b.type"
        )
        assert len(query.paths) == 2
        assert len(query.constraints) == 1

    def test_parenthesized_constraint_backtracks(self):
        query = parse("SELECT a WHERE (a), (a.x = 1 OR a.y = 2)")
        assert len(query.paths) == 1
        assert len(query.constraints) == 1
        assert isinstance(query.constraints[0], Binary)


class TestWithFilters:
    def test_bare_prop_binds_to_vertex(self):
        query = parse("SELECT a WHERE (a WITH age > 18)")
        filter_expr = query.paths[0].vertices[0].filter
        assert isinstance(filter_expr, Binary)
        assert isinstance(filter_expr.lhs, PropRef)
        assert filter_expr.lhs.var == "a"
        assert filter_expr.lhs.prop == "age"

    def test_bare_id_call(self):
        query = parse("SELECT v WHERE (v WITH id() = 17)-[]->()")
        filter_expr = query.paths[0].vertices[0].filter
        assert isinstance(filter_expr.lhs, IdCall)
        assert filter_expr.lhs.var == "v"

    def test_qualified_ref_in_with(self):
        query = parse("SELECT a WHERE (a WITH a.age > 18)")
        filter_expr = query.paths[0].vertices[0].filter
        assert filter_expr.lhs.var == "a"


class TestExpressions:
    def expr(self, text):
        return parse("SELECT a WHERE (a), %s" % text).constraints[0]

    def test_precedence_and_or(self):
        expr = self.expr("a.x = 1 OR a.y = 2 AND a.z = 3")
        assert expr.op == "OR"
        assert expr.rhs.op == "AND"

    def test_precedence_arith(self):
        expr = self.expr("a.x + 2 * 3 = 7")
        assert expr.op == "="
        assert expr.lhs.op == "+"
        assert expr.lhs.rhs.op == "*"

    def test_not(self):
        expr = self.expr("NOT a.flag")
        assert expr.op == "NOT"

    def test_unary_minus(self):
        expr = self.expr("a.x > -5")
        assert expr.rhs.op == "-"
        assert isinstance(expr.rhs.operand, Literal)

    def test_method_calls(self):
        assert isinstance(self.expr("a.id() = 3").lhs, IdCall)
        assert isinstance(self.expr('a.label() = "x"').lhs, LabelCall)

    def test_unknown_method(self):
        with pytest.raises(PgqlSyntaxError):
            parse("SELECT a WHERE (a), a.frobnicate() = 1")

    def test_string_literals(self):
        expr = self.expr('a.name = "alice"')
        assert expr.rhs.value == "alice"

    def test_booleans(self):
        expr = self.expr("a.flag = TRUE")
        assert expr.rhs.value is True

    def test_var_comparison(self):
        expr = self.expr("a != a")
        assert isinstance(expr.lhs, VarRef)


class TestClauses:
    def test_select_aliases(self):
        query = parse("SELECT a.age AS years, b WHERE (a)-[]->(b)")
        assert query.select_items[0].alias == "years"
        assert query.select_items[1].alias is None

    def test_group_by_having(self):
        query = parse(
            "SELECT COUNT(*), a.type WHERE (a)-[]->(b) "
            "GROUP BY a.type HAVING COUNT(*) > 2"
        )
        assert len(query.group_by) == 1
        assert query.having is not None

    def test_order_by_limit(self):
        query = parse(
            "SELECT a WHERE (a) ORDER BY a.age DESC, a.name LIMIT 10"
        )
        assert len(query.order_by) == 2
        assert query.order_by[0].ascending is False
        assert query.order_by[1].ascending is True
        assert query.limit == 10

    def test_aggregates(self):
        query = parse(
            "SELECT COUNT(*), SUM(a.x), AVG(a.x), MIN(a.x), MAX(a.x), "
            "COUNT(DISTINCT a.x) WHERE (a) GROUP BY a.y"
        )
        funcs = [item.expr.func for item in query.select_items]
        assert funcs == [
            AggregateFunc.COUNT,
            AggregateFunc.SUM,
            AggregateFunc.AVG,
            AggregateFunc.MIN,
            AggregateFunc.MAX,
            AggregateFunc.COUNT,
        ]
        assert query.select_items[0].expr.arg is None
        assert query.select_items[5].expr.distinct

    def test_limit_must_be_integer(self):
        with pytest.raises(PgqlSyntaxError):
            parse("SELECT a WHERE (a) LIMIT 2.5")

    def test_trailing_garbage(self):
        with pytest.raises(PgqlSyntaxError):
            parse("SELECT a WHERE (a) bogus")

    def test_missing_where(self):
        with pytest.raises(PgqlSyntaxError):
            parse("SELECT a FROM x")


class TestPaperQueries:
    """Every query that appears verbatim in the paper must parse."""

    PAPER_QUERIES = [
        "SELECT a, b WHERE (a WITH age > 18)-[:friend]->(b)",
        "SELECT p, b.when, i.id WHERE "
        "(p WITH age < 18) -[b:bought]-> (i WITH price > 1000)",
        "SELECT a, b.name WHERE (a)-[]->(b), (a)-[]->(c), "
        "a.id() < 17, a.type = b.type, b.type != c.type",
        "SELECT v WHERE (v WITH id() = 17)-[]->()",
        "SELECT v WHERE (v)-[]->()",
        'SELECT person, band WHERE '
        '(person)-[:likes]->(song)-[:from]->(band), '
        'person.gender = "female", song.style = "rock", '
        'band.name = "Uknown1"',
        "SELECT a WHERE (a) -[]-> (c) <-[]- (b)",
    ]

    @pytest.mark.parametrize("text", PAPER_QUERIES)
    def test_parses(self, text):
        query = parse(text)
        assert query.paths
