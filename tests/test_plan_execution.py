"""Unit tests for step iii: context layout, captures, compiled filters."""

import pytest

from repro.errors import PlanError
from repro.plan import (
    IMPOSSIBLE_LABEL,
    HopKind,
    MatchSemantics,
    PlannerOptions,
    plan_query,
)


class TestContextLayout:
    def test_vertex_ids_always_captured(self, social_graph):
        plan = plan_query("SELECT a WHERE (a)-[]->(b)", social_graph)
        layout = plan.layout
        assert layout.has(("v", "a"))
        assert layout.has(("v", "b"))

    def test_paper_figure2_captures(self, random_graph):
        """Stage 0 captures a.type; stage 1 captures b.name/b.type."""
        plan = plan_query(
            "SELECT a, b.value WHERE (a)-[]->(b), (a)-[]->(c), "
            "a.id() < 17, a.type = b.type, b.type != c.type",
            random_graph,
        )
        layout = plan.layout
        # a.type captured at stage 0 for stage 1's filter.
        assert layout.has(("vp", "a", "type"))
        # b.value captured at stage 1 for output; b.type for stage 3.
        assert layout.has(("vp", "b", "value"))
        assert layout.has(("vp", "b", "type"))
        # c needs no captures beyond its id.
        assert not layout.has(("vp", "c", "type"))
        stage_a, stage_b = plan.stages[0], plan.stages[1]
        assert len(stage_a.captures) == 1
        assert len(stage_b.captures) == 2

    def test_no_capture_when_direct(self, random_graph):
        plan = plan_query(
            "SELECT a WHERE (a WITH type = 1)-[]->(b WITH type = 2)",
            random_graph,
        )
        # Each filter reads its own stage's vertex directly.
        assert not plan.layout.has(("vp", "a", "type"))
        assert not plan.layout.has(("vp", "b", "type"))

    def test_edge_prop_capture(self, social_graph):
        plan = plan_query(
            "SELECT e.since WHERE (a)-[e:friend]->(b)", social_graph
        )
        assert plan.layout.has(("ep", "e", "since"))
        assert plan.stages[0].hop.edge_captures

    def test_edge_id_capture_only_when_needed(self, social_graph):
        plan = plan_query("SELECT a WHERE (a)-[e]->(b)", social_graph)
        assert not plan.layout.has(("e", "e"))
        plan = plan_query("SELECT e WHERE (a)-[e]->(b)", social_graph)
        assert plan.layout.has(("e", "e"))

    def test_label_capture(self, social_graph):
        plan = plan_query(
            "SELECT a.label() WHERE (a)-[]->(b)", social_graph
        )
        assert plan.layout.has(("vl", "a"))

    def test_widths_are_monotone(self, random_graph):
        plan = plan_query(
            "SELECT a, b, c WHERE (a)-[]->(b)-[]->(c), a.type = c.type",
            random_graph,
        )
        widths = [(s.in_width, s.out_width) for s in plan.stages]
        for in_width, out_width in widths:
            assert in_width <= out_width
        for earlier, later in zip(widths, widths[1:]):
            assert earlier[1] <= later[0]


class TestLabelCompilation:
    def test_known_label(self, social_graph):
        plan = plan_query("SELECT a WHERE (a:person)-[]->(b)", social_graph)
        assert plan.stages[0].label_id == social_graph.labels.lookup("person")

    def test_unknown_label_is_impossible(self, social_graph):
        plan = plan_query("SELECT a WHERE (a:ghost)-[]->(b)", social_graph)
        assert plan.stages[0].label_id == IMPOSSIBLE_LABEL

    def test_unknown_edge_label_is_impossible(self, social_graph):
        plan = plan_query("SELECT a WHERE (a)-[:ghost]->(b)", social_graph)
        assert plan.stages[0].hop.edge_label_id == IMPOSSIBLE_LABEL


class TestCompiledFilters:
    def test_missing_property_rejected_at_plan_time(self, social_graph):
        with pytest.raises(PlanError):
            plan_query("SELECT a WHERE (a WITH nonexistent > 3)",
                       social_graph)

    def test_missing_edge_property_rejected(self, social_graph):
        with pytest.raises(PlanError):
            plan_query("SELECT a WHERE (a)-[e]->(b), e.ghost = 1",
                       social_graph)

    def test_filter_closure_runs(self, social_graph):
        plan = plan_query("SELECT a WHERE (a WITH age > 18)", social_graph)
        stage = plan.stages[0]
        assert stage.filter((0,), 0, -1) is True    # age 31
        assert stage.filter((1,), 1, -1) is False   # age 17


class TestSemantics:
    def test_homomorphism_has_no_distinctness(self, random_graph):
        plan = plan_query("SELECT a WHERE (a)-[]->(b)", random_graph)
        assert not plan.stages[1].iso_vertex_slots

    def test_isomorphism_vertex_slots(self, random_graph):
        plan = plan_query(
            "SELECT a WHERE (a)-[]->(b)-[]->(c)", random_graph,
            PlannerOptions(semantics=MatchSemantics.ISOMORPHISM),
        )
        assert plan.stages[1].iso_vertex_slots == [0]
        assert len(plan.stages[2].iso_vertex_slots) == 2

    def test_isomorphism_captures_all_edge_ids(self, random_graph):
        plan = plan_query(
            "SELECT a WHERE (a)-[]->(b)-[]->(c)", random_graph,
            PlannerOptions(semantics=MatchSemantics.ISOMORPHISM),
        )
        # Two anonymous edges, both captured for distinctness checks.
        edge_vars = plan.query.edge_vars()
        for edge_var in edge_vars:
            assert plan.layout.has(("e", edge_var))
        assert plan.stages[1].hop.iso_edge_slots

    def test_induced_appends_verification_stages(self, random_graph):
        plain = plan_query("SELECT a WHERE (a)-[]->(b)", random_graph)
        induced = plan_query(
            "SELECT a WHERE (a)-[]->(b)", random_graph,
            PlannerOptions(semantics=MatchSemantics.INDUCED),
        )
        assert induced.num_stages > plain.num_stages
        checker = induced.stages[-1]
        assert checker.forbidden_slots


class TestDescribe:
    def test_describe_lists_all_stages(self, random_graph):
        plan = plan_query(
            "SELECT a WHERE (a)-[]->(b)-[]->(c)", random_graph
        )
        text = plan.describe()
        assert text.count("Stage") == plan.num_stages
        assert "output" in text
