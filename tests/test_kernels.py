"""Bulk-kernel fast path: cost parity and batch reservations.

The compiled kernels (:mod:`repro.runtime.kernels`) are a pure
performance layer: every deterministic quantity — result rows, ticks,
total micro-ops, visits/passes, the stage profile — must be bit-identical
to the micro-stepped reference path.  These tests run the full benchmark
matrix (and a chaos-injected run) both ways and diff everything, then
property-test the batch reservation API that lets kernels pre-admit
whole remote batches without breaking the flow-control memory bound.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ClusterConfig, run_query, uniform_random_graph
from repro.bench import WORKLOADS, run_workload
from repro.chaos import profile
from repro.runtime.flow_control import FlowControl

#: Per-run measurements that legitimately differ between the two paths.
_NONDETERMINISTIC = ("wall_time_seconds", "throughput_ops_per_sec")


def _deterministic(record):
    return {
        key: value
        for key, value in record.items()
        if key not in _NONDETERMINISTIC
    }


class TestDifferentialParity:
    """Kernels on vs. off over every benchmark workload."""

    @pytest.mark.parametrize(
        "key,spec", WORKLOADS, ids=[key for key, _ in WORKLOADS]
    )
    def test_workload_metrics_identical(self, key, spec):
        bulk = _deterministic(run_workload(key, spec, bulk_kernels=True))
        micro = _deterministic(run_workload(key, spec, bulk_kernels=False))
        assert bulk == micro

    def test_result_rows_identical(self):
        graph = uniform_random_graph(200, 1_000, seed=13, num_types=4)
        query = "SELECT a, b, c WHERE (a)-[]->(b)-[]->(c), a.type = 1"
        results = {}
        for bulk_kernels in (True, False):
            config = ClusterConfig(num_machines=4, bulk_kernels=bulk_kernels)
            results[bulk_kernels] = run_query(graph, query, config)
        assert results[True].rows == results[False].rows
        assert results[True].metrics.ticks == results[False].metrics.ticks
        assert (
            results[True].metrics.total_ops
            == results[False].metrics.total_ops
        )
        assert results[True].stage_profile == results[False].stage_profile

    def test_fast_path_actually_engaged(self):
        graph = uniform_random_graph(100, 500, seed=5, num_types=3)
        query = "SELECT a, b WHERE (a)-[]->(b)"
        on = run_query(graph, query, ClusterConfig(num_machines=2))
        off = run_query(
            graph, query, ClusterConfig(num_machines=2, bulk_kernels=False)
        )
        assert on.metrics.kernel_batches > 0
        assert on.metrics.kernel_ops > 0
        assert off.metrics.kernel_batches == 0
        assert off.metrics.kernel_ops == 0

    def test_chaos_run_identical(self):
        """Fault injection + reliability, kernels on vs. off."""
        graph = uniform_random_graph(200, 1_200, seed=21, num_types=4)
        query = "SELECT a, b, c WHERE (a)-[]->(b)-[]->(c), a.type = 1"
        results = {}
        for bulk_kernels in (True, False):
            config = ClusterConfig(
                num_machines=4,
                chaos=profile("soak", seed=7),
                reliability=True,
                bulk_kernels=bulk_kernels,
            )
            results[bulk_kernels] = run_query(graph, query, config)
        on, off = results[True], results[False]
        assert on.rows == off.rows
        assert on.metrics.ticks == off.metrics.ticks
        assert on.metrics.total_ops == off.metrics.total_ops
        assert on.stage_profile == off.stage_profile


# ----------------------------------------------------------------------
# Batch reservation property test
# ----------------------------------------------------------------------
_STAGES = 3
_MACHINES = 3
_WINDOW = 2

_ops = st.lists(
    st.tuples(
        st.sampled_from(
            ["reserve", "release", "send", "ack", "grant", "donate",
             "redistribute"]
        ),
        st.integers(min_value=0, max_value=_STAGES - 1),
        st.integers(min_value=1, max_value=_MACHINES - 1),
        st.integers(min_value=1, max_value=8),
    ),
    max_size=60,
)


class TestReservationInvariant:
    @settings(max_examples=200, deadline=None)
    @given(_ops)
    def test_reserve_never_exceeds_window(self, ops):
        """inflight + reserved <= limit after every operation, even while
        quota borrowing (grants/donations) and stage redistribution are
        resizing the per-(stage, dest) limits underneath the kernel."""
        flow = FlowControl(_STAGES, _MACHINES, 0, _WINDOW, dynamic=True)
        for name, stage, dest, amount in ops:
            if name == "reserve":
                granted = flow.reserve(stage, dest, amount)
                assert 0 <= granted <= amount
            elif name == "release":
                flow.release(stage, dest)
            elif name == "send":
                if flow.can_flush(stage, dest):
                    flow.on_send(stage, dest)
            elif name == "ack":
                count = min(amount, flow.inflight(stage, dest))
                if count:
                    flow.on_ack_from(stage, dest, count)
            elif name == "grant":
                flow.on_quota_grant(stage, dest, amount)
            elif name == "donate":
                flow.donate_quota(stage, dest)
            elif name == "redistribute":
                # The termination protocol only redistributes a stage
                # once it is globally complete — nothing in flight.
                if all(
                    flow.inflight(stage, m) == 0
                    and flow.reserved(stage, m) == 0
                    for m in range(_MACHINES)
                ):
                    flow.redistribute_completed_stage(stage)
            for n in range(_STAGES):
                for m in range(_MACHINES):
                    assert (
                        flow.inflight(n, m) + flow.reserved(n, m)
                        <= flow.limit(n, m)
                    ), (name, stage, dest, amount, n, m)

    def test_reserve_caps_at_spare_capacity(self):
        flow = FlowControl(2, 2, 0, 3, dynamic=True)
        flow.on_send(0, 1)
        assert flow.reserve(0, 1, 10) == 2  # limit 3, inflight 1
        assert flow.reserve(0, 1, 10) == 0  # window fully spoken for
        assert not flow.can_send(0, 1)
        flow.release(0, 1)
        assert flow.reserve(0, 1, 1) == 1

    def test_send_consumes_reservation(self):
        flow = FlowControl(2, 2, 0, 2, dynamic=True)
        assert flow.reserve(0, 1, 2) == 2
        flow.on_send(0, 1)
        assert flow.inflight(0, 1) == 1
        assert flow.reserved(0, 1) == 1
        flow.on_send(0, 1)
        assert flow.inflight(0, 1) == 2
        assert flow.reserved(0, 1) == 0
