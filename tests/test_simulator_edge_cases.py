"""Edge-case tests for the simulator loop and clock handling."""

import pytest

from repro.cluster import ClusterConfig, MachineMetrics, Simulator
from repro.errors import RuntimeFault


class _SleeperMachine:
    """Does nothing until it receives a wakeup message."""

    def __init__(self, api):
        self.api = api
        self.woke = api.machine_id == 0
        self.sent = False
        self.metrics = MachineMetrics()

    def on_message(self, src, payload):
        self.woke = True

    def worker_step(self, worker_index, budget):
        if self.api.machine_id == 0 and not self.sent:
            self.sent = True
            self.api.send(1, "wake")
            return 1
        return 0

    def is_finished(self):
        return self.woke


class TestFastForward:
    def test_clock_jumps_to_next_delivery(self):
        config = ClusterConfig(num_machines=2, network_latency=500)
        simulator = Simulator(config)
        machines = [
            _SleeperMachine(simulator.api_for(0)),
            _SleeperMachine(simulator.api_for(1)),
        ]
        simulator.attach(machines)
        metrics = simulator.run()
        # The run must not iterate 500 empty ticks one by one: the clock
        # fast-forwards, but the total still reflects the latency.
        assert metrics.ticks >= 500
        assert metrics.ticks < 510

    def test_integer_clock_with_fractional_nic(self):
        config = ClusterConfig(num_machines=2, network_latency=3,
                               sender_messages_per_tick=3)
        simulator = Simulator(config)
        machines = [
            _SleeperMachine(simulator.api_for(0)),
            _SleeperMachine(simulator.api_for(1)),
        ]
        simulator.attach(machines)
        metrics = simulator.run()
        assert isinstance(metrics.ticks, int)


class _StuckMachine:
    def __init__(self, api):
        self.metrics = MachineMetrics()

    def on_message(self, src, payload):
        pass

    def worker_step(self, worker_index, budget):
        return 0

    def is_finished(self):
        return False  # never


class TestDeadlockDetection:
    def test_idle_unfinished_raises(self):
        config = ClusterConfig(num_machines=1)
        simulator = Simulator(config)
        simulator.attach([_StuckMachine(simulator.api_for(0))])
        with pytest.raises(RuntimeFault):
            simulator.run()


class _BusyMachine:
    def __init__(self, api):
        self.metrics = MachineMetrics()

    def on_message(self, src, payload):
        pass

    def worker_step(self, worker_index, budget):
        return budget  # spins forever

    def is_finished(self):
        return False


class TestMaxTicks:
    def test_runaway_guard(self):
        config = ClusterConfig(num_machines=1, max_ticks=100)
        simulator = Simulator(config)
        simulator.attach([_BusyMachine(simulator.api_for(0))])
        with pytest.raises(RuntimeFault):
            simulator.run()
