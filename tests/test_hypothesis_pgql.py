"""Property-based round-trip tests for the PGQL printer and parser.

Random expression trees are printed with ``expr_to_pgql`` and reparsed;
the reparsed tree must evaluate to the same value under a fixed
environment.  This pins down precedence and parenthesization bugs that
example-based tests tend to miss.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pgql import MappingEnv, parse
from repro.pgql.ast import Binary, Literal, PropRef, Unary
from repro.pgql.expressions import evaluate
from repro.pgql.printer import expr_to_pgql

ENV = MappingEnv(
    ids={"a": 3},
    props={("a", "x"): 7, ("a", "y"): -2, ("a", "z"): 10},
)

_leaves = st.one_of(
    st.integers(min_value=0, max_value=9).map(Literal),
    st.sampled_from(["x", "y", "z"]).map(lambda p: PropRef("a", p)),
    st.booleans().map(Literal),
)

_arith_ops = st.sampled_from(["+", "-", "*"])
_compare_ops = st.sampled_from(["=", "!=", "<", "<=", ">", ">="])
_bool_ops = st.sampled_from(["AND", "OR"])


def _binary(op_strategy):
    def build(children):
        return st.builds(
            Binary, op_strategy, children, children
        )
    return build


expressions = st.recursive(
    _leaves,
    lambda children: st.one_of(
        st.builds(Binary, _arith_ops, children, children),
        st.builds(Binary, _compare_ops, children, children),
        st.builds(Binary, _bool_ops, children, children),
        st.builds(Unary, st.just("-"), children),
        st.builds(Unary, st.just("NOT"), children),
    ),
    max_leaves=12,
)


def _safe_eval(expr):
    try:
        return ("ok", evaluate(expr, ENV))
    except (TypeError, ZeroDivisionError) as exc:
        return ("err", type(exc).__name__)


class TestPrintParseRoundTrip:
    @given(expr=expressions)
    @settings(max_examples=300, deadline=None)
    def test_reparse_preserves_value(self, expr):
        printed = expr_to_pgql(expr)
        reparsed = parse(
            "SELECT a WHERE (a), %s" % printed
        ).constraints[0]
        assert _safe_eval(reparsed) == _safe_eval(expr)

    @given(expr=expressions)
    @settings(max_examples=150, deadline=None)
    def test_print_is_fixed_point(self, expr):
        once = expr_to_pgql(expr)
        reparsed = parse("SELECT a WHERE (a), %s" % once).constraints[0]
        assert expr_to_pgql(reparsed) == once
