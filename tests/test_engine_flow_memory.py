"""Integration tests for flow control, memory bounds, and blocking mode.

These check the paper's systems claims end to end:

* queries complete under arbitrarily small flow-control budgets, with
  identical results (the "deterministic guarantee of query completion
  under a finite amount of memory");
* peak buffered contexts respect the configured receiver-side bound;
* dynamic memory management (redistribution + borrowing) never changes
  results;
* asynchronous execution beats blocking execution under latency.
"""

import pytest

from repro import ClusterConfig, run_query, uniform_random_graph

HEAVY_QUERY = "SELECT a, b, c WHERE (a)-[]->(b)-[]->(c), a.type = 1"


@pytest.fixture(scope="module")
def workload_graph():
    return uniform_random_graph(200, 1_200, seed=21, num_types=4)


class TestMemoryBounds:
    @pytest.mark.parametrize("window,bulk", [(8, 32), (2, 8), (1, 2), (1, 1)])
    def test_completes_under_any_budget(self, workload_graph, window, bulk):
        config = ClusterConfig(
            num_machines=4,
            flow_control_window=window,
            bulk_message_size=bulk,
        )
        result = run_query(workload_graph, HEAVY_QUERY, config)
        reference = run_query(
            workload_graph, HEAVY_QUERY, ClusterConfig(num_machines=1)
        )
        assert sorted(result.rows) == sorted(reference.rows)

    def test_peak_buffering_respects_budget(self, workload_graph):
        """Receiver-side bound: stages * senders * window * bulk."""
        machines = 4
        window, bulk = 2, 4
        config = ClusterConfig(
            num_machines=machines,
            flow_control_window=window,
            bulk_message_size=bulk,
            dynamic_flow_control=False,
        )
        result = run_query(workload_graph, HEAVY_QUERY, config)
        num_stages = result.plan.num_stages
        # A machine buffers at most: inbound in-flight per (stage, sender)
        # plus its own outgoing partial buffers (one per stage/dest pair).
        bound = num_stages * (machines - 1) * window * bulk \
            + num_stages * (machines - 1) * bulk
        assert result.metrics.peak_buffered_contexts <= bound

    def test_smaller_budget_lowers_peak(self, workload_graph):
        big = run_query(
            workload_graph, HEAVY_QUERY,
            ClusterConfig(num_machines=4, flow_control_window=16,
                          bulk_message_size=64),
        )
        small = run_query(
            workload_graph, HEAVY_QUERY,
            ClusterConfig(num_machines=4, flow_control_window=1,
                          bulk_message_size=2),
        )
        assert small.metrics.peak_buffered_contexts < \
            big.metrics.peak_buffered_contexts

    def test_flow_control_blocks_recorded(self, workload_graph):
        result = run_query(
            workload_graph, HEAVY_QUERY,
            ClusterConfig(num_machines=4, flow_control_window=1,
                          bulk_message_size=1),
        )
        assert result.metrics.flow_control_blocks > 0


class TestDynamicFlowControl:
    def test_dynamic_and_static_agree_on_results(self, workload_graph):
        base = dict(num_machines=4, flow_control_window=2,
                    bulk_message_size=4)
        dynamic = run_query(
            workload_graph, HEAVY_QUERY,
            ClusterConfig(dynamic_flow_control=True, **base),
        )
        static = run_query(
            workload_graph, HEAVY_QUERY,
            ClusterConfig(dynamic_flow_control=False, **base),
        )
        assert sorted(dynamic.rows) == sorted(static.rows)

    def test_borrowing_happens_under_pressure(self, workload_graph):
        result = run_query(
            workload_graph, HEAVY_QUERY,
            ClusterConfig(num_machines=4, flow_control_window=1,
                          bulk_message_size=1, dynamic_flow_control=True),
        )
        assert result.metrics.quota_requests > 0

    def test_static_mode_never_borrows(self, workload_graph):
        result = run_query(
            workload_graph, HEAVY_QUERY,
            ClusterConfig(num_machines=4, flow_control_window=1,
                          bulk_message_size=1, dynamic_flow_control=False),
        )
        assert result.metrics.quota_requests == 0


class TestBlockingMode:
    def test_blocking_agrees_on_results(self, workload_graph):
        config = ClusterConfig(num_machines=3, blocking_remote=True)
        result = run_query(workload_graph, HEAVY_QUERY, config)
        reference = run_query(
            workload_graph, HEAVY_QUERY, ClusterConfig(num_machines=3)
        )
        assert sorted(result.rows) == sorted(reference.rows)

    def test_async_is_faster_under_latency(self, workload_graph):
        base = dict(num_machines=3, network_latency=16)
        async_run = run_query(
            workload_graph, HEAVY_QUERY,
            ClusterConfig(blocking_remote=False, **base),
        )
        blocking_run = run_query(
            workload_graph, HEAVY_QUERY,
            ClusterConfig(blocking_remote=True, **base),
        )
        assert async_run.metrics.ticks < blocking_run.metrics.ticks
