"""Property-based tests of planner invariants over random queries.

Uses the random-pattern-query generator as the query source and checks
structural invariants every compiled plan must satisfy, regardless of
options: edges covered exactly once, layout consistency, monotone
context widths, and well-formed stage/hop sequences.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import uniform_random_graph
from repro.pgql import parse_and_validate
from repro.plan import (
    HopKind,
    MatchSemantics,
    PlannerOptions,
    SchedulingPolicy,
    VisitKind,
    plan_query,
)
from repro.workloads import random_pattern_query

GRAPH = uniform_random_graph(40, 160, seed=1)

options_strategy = st.builds(
    PlannerOptions,
    semantics=st.sampled_from(list(MatchSemantics)),
    scheduling=st.sampled_from(list(SchedulingPolicy)),
    use_common_neighbors=st.booleans(),
)


class TestPlanInvariants:
    @given(
        seed=st.integers(min_value=0, max_value=300),
        num_edges=st.integers(min_value=1, max_value=5),
        options=options_strategy,
    )
    @settings(max_examples=120, deadline=None)
    def test_compiled_plan_well_formed(self, seed, num_edges, options):
        query = parse_and_validate(
            random_pattern_query(seed, num_edges=num_edges)
        )
        plan = plan_query(query, GRAPH, options)

        # Last hop is OUTPUT; no other stage outputs.
        assert plan.stages[-1].hop.kind is HopKind.OUTPUT
        assert all(
            stage.hop.kind is not HopKind.OUTPUT
            for stage in plan.stages[:-1]
        )

        # Every vertex variable is matched exactly once.
        matched = [
            stage.var for stage in plan.stages
            if stage.kind is VisitKind.MATCH
        ]
        assert sorted(matched) == sorted(query.vertex_vars())

        # Context widths are monotone and stages chain correctly.
        for stage in plan.stages:
            assert stage.in_width <= stage.out_width
            assert 0 <= stage.vertex_slot < stage.in_width
        for earlier, later in zip(plan.stages, plan.stages[1:]):
            assert earlier.out_width <= later.in_width

        # The layout has exactly one slot per symbol and covers all ids.
        symbols = plan.layout.symbols()
        assert len(set(symbols.values())) == len(symbols)
        assert sorted(symbols.values()) == list(range(plan.layout.width))
        for var in query.vertex_vars():
            assert ("v", var) in symbols

        # Hops that match edges point at the next stage's width.
        for stage in plan.stages[:-1]:
            hop = stage.hop
            if hop.appends_target_id:
                next_stage = plan.stages[stage.index + 1]
                assert next_stage.kind is VisitKind.MATCH

        # Isomorphism plans carry distinctness slots on later matches.
        if options.semantics is not MatchSemantics.HOMOMORPHISM:
            match_stages = [
                stage for stage in plan.stages
                if stage.kind is VisitKind.MATCH
            ]
            for position, stage in enumerate(match_stages):
                assert len(stage.iso_vertex_slots) == position

    @given(seed=st.integers(min_value=0, max_value=300))
    @settings(max_examples=60, deadline=None)
    def test_all_pattern_edges_planned(self, seed):
        query = parse_and_validate(random_pattern_query(seed, num_edges=4))
        plan = plan_query(query, GRAPH)
        # Each pattern edge is consumed by exactly one hop that performs
        # edge matching (neighbor, edge-check vertex hop, or CN pair).
        edge_hops = sum(
            1
            for stage in plan.stages
            if stage.hop.kind in (HopKind.NEIGHBOR, HopKind.CN_PROBE,
                                  HopKind.CN_COLLECT)
            or (stage.hop.kind is HopKind.VERTEX
                and stage.hop.edge_req_orientation is not None)
        )
        assert edge_hops == 4

    @given(
        seed=st.integers(min_value=0, max_value=120),
        options=options_strategy,
    )
    @settings(max_examples=60, deadline=None)
    def test_describe_never_crashes(self, seed, options):
        query = parse_and_validate(random_pattern_query(seed, num_edges=3))
        plan = plan_query(query, GRAPH, options)
        text = plan.describe()
        assert text.count("Stage") == plan.num_stages
