"""Live telemetry: registry semantics, sampling, exporters, acceptance.

Covers the PR-3 tentpole end to end: label-aware metric families with
Prometheus ``le`` bucket semantics, the per-tick time-series sampler's
determinism and its bounded-memory acceptance property
(``max(buffered_max) == QueryMetrics.peak_buffered_contexts <= budget``),
exporter round-trips, union-seam merging, and the abort diagnostics the
flow-control gauges feed.
"""

import pytest

from repro.cluster.config import ClusterConfig
from repro.errors import QueryAborted, TelemetryError
from repro.graph import uniform_random_graph
from repro.obs import MACHINE_COLUMNS, MetricsRegistry, Telemetry
from repro.obs.exporters import (
    parse_prometheus,
    parse_series_csv,
    parse_series_jsonl,
    prometheus_text,
    registry_csv,
    registry_jsonl,
    series_csv,
    series_jsonl,
)
from repro.plan import PlannerOptions
from repro.runtime import PgxdAsyncEngine

QUERY = "SELECT a, b WHERE (a)-[]->(b), a.value > b.value"


def run_telemetry_query(machines=4, seed=0, interval=1, query=QUERY,
                        vertices=150, edges=600, **config_kwargs):
    graph = uniform_random_graph(vertices, edges, seed=seed)
    config = ClusterConfig(num_machines=machines, seed=seed,
                           telemetry=True, telemetry_interval=interval,
                           **config_kwargs)
    engine = PgxdAsyncEngine(graph, config)
    return engine.query(query)


# ----------------------------------------------------------------------
# Registry semantics
# ----------------------------------------------------------------------
class TestCounterGauge:
    def test_counter_monotone(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total")
        counter.inc()
        counter.inc(4)
        assert counter.get() == 5
        with pytest.raises(TelemetryError):
            counter.inc(-1)

    def test_gauge_up_and_down(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g")
        gauge.set(10)
        gauge.inc(3)
        gauge.dec()
        assert gauge.get() == 12

    def test_invalid_metric_name(self):
        with pytest.raises(TelemetryError):
            MetricsRegistry().counter("9bad-name")


class TestLabels:
    def test_children_per_labelset(self):
        registry = MetricsRegistry()
        family = registry.counter("msgs_total", labels=("machine",))
        family.labels(0).inc()
        family.labels("0").inc()  # stringified: same child
        family.labels(1).inc(5)
        assert family.labels(0).get() == 2
        assert family.labels(1).get() == 5
        assert [values for values, _ in family.children()] == [
            ("0",), ("1",)
        ]

    def test_labels_by_keyword(self):
        registry = MetricsRegistry()
        family = registry.gauge("g", labels=("machine", "stage"))
        family.labels(machine=1, stage=2).set(7)
        assert family.labels(1, 2).get() == 7

    def test_wrong_label_count_rejected(self):
        registry = MetricsRegistry()
        family = registry.counter("c_total", labels=("machine",))
        with pytest.raises(TelemetryError):
            family.labels(1, 2)
        with pytest.raises(TelemetryError):
            family.labels(stage=1)

    def test_labelled_family_rejects_direct_use(self):
        registry = MetricsRegistry()
        family = registry.counter("c_total", labels=("machine",))
        with pytest.raises(TelemetryError):
            family.inc()

    def test_redeclare_same_signature_is_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("c_total", labels=("machine",))
        again = registry.counter("c_total", labels=("machine",))
        assert first is again

    def test_conflicting_redeclare_rejected(self):
        registry = MetricsRegistry()
        registry.counter("m")
        with pytest.raises(TelemetryError):
            registry.gauge("m")
        registry.histogram("h", buckets=(1, 2))
        with pytest.raises(TelemetryError):
            registry.histogram("h", buckets=(1, 2, 3))


class TestHistogramBuckets:
    def test_le_semantics_at_the_edges(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", buckets=(1, 2, 4))
        # A value exactly on a bound belongs to that bound's bucket
        # (Prometheus "le" semantics); one past the last bound overflows.
        for value in (0, 1, 2, 3, 4, 5, 100):
            histogram.observe(value)
        child = histogram._sole_child()
        assert child.counts == [2, 1, 2, 2]  # <=1, <=2, <=4, +Inf
        assert child.count == 7
        assert child.sum == 115

    def test_cumulative_ends_with_inf(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", buckets=(1, 2))
        histogram.observe(0)
        histogram.observe(9)
        cumulative = histogram._sole_child().cumulative()
        assert cumulative == [(1, 1), (2, 1), (float("inf"), 2)]

    def test_bucketless_histogram_rejected(self):
        with pytest.raises(TelemetryError):
            MetricsRegistry().histogram("h", buckets=())


class TestMerge:
    def test_counters_add_gauges_take_later_value(self):
        first, second = MetricsRegistry(), MetricsRegistry()
        first.counter("c_total").inc(3)
        second.counter("c_total").inc(4)
        first.gauge("g").set(10)
        second.gauge("g").set(2)
        first.merge(second)
        assert first.get("c_total").get() == 7
        assert first.get("g").get() == 2

    def test_histograms_add_bucketwise(self):
        first, second = MetricsRegistry(), MetricsRegistry()
        first.histogram("h", buckets=(1, 2)).observe(1)
        second.histogram("h", buckets=(1, 2)).observe(5)
        first.merge(second)
        child = first.get("h")._sole_child()
        assert child.counts == [1, 0, 1]
        assert child.count == 2

    def test_mismatched_bounds_rejected(self):
        first, second = MetricsRegistry(), MetricsRegistry()
        first.histogram("h", buckets=(1, 2)).observe(1)
        second.histogram("h", buckets=(1, 4)).observe(1)
        with pytest.raises(TelemetryError):
            first.merge(second)

    def test_merge_imports_missing_families(self):
        first, second = MetricsRegistry(), MetricsRegistry()
        second.counter("only_there_total", labels=("machine",)) \
            .labels(3).inc(9)
        first.merge(second)
        assert first.get("only_there_total").labels(3).get() == 9


# ----------------------------------------------------------------------
# Exporter round-trips
# ----------------------------------------------------------------------
class TestExporters:
    def build_registry(self):
        registry = MetricsRegistry()
        registry.counter("repro_ops_total", "ops", labels=("machine",)) \
            .labels(0).inc(42)
        registry.get("repro_ops_total").labels(1).inc(7)
        registry.gauge("repro_budget", "budget").set(960)
        histogram = registry.histogram(
            "repro_latency_ticks", "latency", buckets=(1, 2, 4)
        )
        for value in (0, 1, 3, 9):
            histogram.observe(value)
        return registry

    def test_prometheus_round_trip(self):
        registry = self.build_registry()
        text = prometheus_text(registry)
        parsed = parse_prometheus(text)
        assert parsed[("repro_ops_total", frozenset({("machine", "0")}))] \
            == 42
        assert parsed[("repro_budget", frozenset())] == 960
        # le buckets are cumulative and end with +Inf.
        assert parsed[(
            "repro_latency_ticks_bucket", frozenset({("le", "4")})
        )] == 3
        assert parsed[(
            "repro_latency_ticks_bucket", frozenset({("le", "+Inf")})
        )] == 4
        assert parsed[("repro_latency_ticks_count", frozenset())] == 4
        # Every sample the registry flattens appears in the text.
        assert len(parsed) == len(registry.samples())

    def test_prometheus_headers(self):
        text = prometheus_text(self.build_registry())
        assert "# TYPE repro_ops_total counter" in text
        assert "# TYPE repro_latency_ticks histogram" in text
        assert "# HELP repro_budget budget" in text

    def test_registry_jsonl_and_csv_agree(self):
        registry = self.build_registry()
        jsonl_lines = registry_jsonl(registry).strip().splitlines()
        csv_lines = registry_csv(registry).strip().splitlines()
        assert len(jsonl_lines) == len(registry.samples())
        assert len(csv_lines) == len(registry.samples()) + 1  # header

    def test_series_round_trip(self):
        result = run_telemetry_query()
        sampler = result.telemetry.sampler
        meta, rows = parse_series_jsonl(series_jsonl(sampler))
        assert meta["samples"] == sampler.num_samples
        assert meta["columns"] == list(MACHINE_COLUMNS)
        assert meta["budget"] == sampler.budget
        assert len(rows) == sampler.num_samples * len(sampler.machines)
        # CSV carries the identical rows with identical types.
        assert parse_series_csv(series_csv(sampler)) == rows
        # Spot-check one row against the in-memory series.
        row = rows[0]
        series = sampler.series(row["machine"])
        index = series["ticks"].index(row["tick"])
        assert row["buffered"] == series["buffered"][index]


# ----------------------------------------------------------------------
# End-to-end acceptance
# ----------------------------------------------------------------------
class TestEndToEnd:
    def test_off_by_default(self):
        graph = uniform_random_graph(60, 240, seed=0)
        engine = PgxdAsyncEngine(graph, ClusterConfig(num_machines=2))
        assert engine.query(QUERY).telemetry is None

    def test_per_query_opt_in(self):
        graph = uniform_random_graph(60, 240, seed=0)
        engine = PgxdAsyncEngine(graph, ClusterConfig(num_machines=2))
        result = engine.query(
            QUERY, options=PlannerOptions(telemetry=True)
        )
        assert result.telemetry is not None
        assert result.telemetry.sampler.num_samples > 0

    def test_peak_matches_series_and_stays_under_budget(self):
        result = run_telemetry_query()
        sampler = result.telemetry.sampler
        # The acceptance property: the recorded curve's high-water mark
        # IS the metrics' peak, and it never exceeds the budget.
        assert sampler.peak("buffered_max") \
            == result.metrics.peak_buffered_contexts
        assert sampler.peak("buffered_max") <= sampler.budget
        assert sampler.budget > 0

    def test_peak_matches_with_sparse_sampling(self):
        result = run_telemetry_query(interval=7)
        sampler = result.telemetry.sampler
        assert sampler.peak("buffered_max") \
            == result.metrics.peak_buffered_contexts
        # Sparse sampling really sampled less.
        assert sampler.num_samples < result.metrics.ticks

    def test_series_is_deterministic(self):
        first = run_telemetry_query(seed=3)
        second = run_telemetry_query(seed=3)
        s1, s2 = first.telemetry.sampler, second.telemetry.sampler
        assert s1.ticks == s2.ticks
        assert s1.machines == s2.machines
        assert s1.wavefront == s2.wavefront
        assert prometheus_text(first.telemetry.registry) \
            == prometheus_text(second.telemetry.registry)

    def test_telemetry_does_not_perturb_the_run(self):
        graph = uniform_random_graph(150, 600, seed=1)
        plain_engine = PgxdAsyncEngine(
            graph, ClusterConfig(num_machines=4, seed=1)
        )
        telemetry_engine = PgxdAsyncEngine(
            graph, ClusterConfig(num_machines=4, seed=1, telemetry=True)
        )
        plain = plain_engine.query(QUERY)
        sampled = telemetry_engine.query(QUERY)
        assert plain.metrics.ticks == sampled.metrics.ticks
        assert plain.metrics.total_ops == sampled.metrics.total_ops
        assert sorted(plain.rows) == sorted(sampled.rows)

    def test_mirrored_counters_match_query_metrics(self):
        result = run_telemetry_query()
        registry = result.telemetry.registry
        total_ops = sum(
            child.get()
            for _values, child in registry.get("repro_ops_total").children()
        )
        assert total_ops == result.metrics.total_ops
        results_emitted = sum(
            child.get()
            for _values, child in
            registry.get("repro_results_emitted_total").children()
        )
        assert results_emitted == result.metrics.num_results

    def test_message_latency_histogram_populated(self):
        result = run_telemetry_query()
        latency = result.telemetry.message_latency._sole_child()
        assert latency.count > 0
        # Transit time can never be negative in the simulator.
        assert latency.sum >= latency.count  # latency >= 1 tick each

    def test_wavefront_ends_fully_complete(self):
        result = run_telemetry_query()
        sampler = result.telemetry.sampler
        final = sampler.wavefront[-1]
        assert len(final) == result.plan.num_stages
        assert all(done == result.metrics.num_machines for done in final)

    def test_meta_and_summary(self):
        result = run_telemetry_query()
        telemetry = result.telemetry
        assert telemetry.meta["ticks"] == result.metrics.ticks
        assert telemetry.meta["num_machines"] == 4
        summary = telemetry.summary()
        assert "samples=%d" % telemetry.sampler.num_samples in summary
        assert "peak_buffered=" in summary

    def test_union_query_merges_telemetry(self):
        result = run_telemetry_query(
            query="SELECT a, b WHERE (a)-/{1,2}/->(b)",
            vertices=60, edges=240, machines=2,
        )
        telemetry = result.telemetry
        assert telemetry is not None
        # Ticks accumulate across the expansions, and the series'
        # acceptance property still holds through the merge.
        assert telemetry.meta["ticks"] == result.metrics.ticks
        assert telemetry.sampler.peak("buffered_max") \
            == result.metrics.peak_buffered_contexts


class TestAbortDiagnostics:
    def test_deadline_abort_carries_flow_state(self):
        graph = uniform_random_graph(200, 800, seed=0)
        engine = PgxdAsyncEngine(
            graph, ClusterConfig(num_machines=4, seed=0)
        )
        with pytest.raises(QueryAborted) as aborted:
            engine.query(QUERY, options=PlannerOptions(timeout_ticks=3))
        state = aborted.value.flow_state
        assert state is not None and len(state) == 4
        for machine_id, entry in enumerate(state):
            assert entry["machine"] == machine_id
            assert entry["inflight_total"] >= 0
            assert entry["buffered_contexts"] >= 0
            assert isinstance(entry["occupancy"], dict)
        # Mid-flight state: something was buffered or in flight.
        assert any(
            entry["buffered_contexts"] or entry["occupancy"]
            for entry in state
        )
        assert "flow:" in aborted.value.detail

    def test_abort_flushes_partial_series(self):
        graph = uniform_random_graph(200, 800, seed=0)
        engine = PgxdAsyncEngine(
            graph,
            ClusterConfig(num_machines=4, seed=0, telemetry=True),
        )
        options = PlannerOptions(timeout_ticks=5)
        with pytest.raises(QueryAborted):
            engine.query(QUERY, options=options)


class TestTraceDroppedWarning:
    def test_explain_analyze_and_profile_warn_on_truncation(self):
        graph = uniform_random_graph(150, 600, seed=0)
        engine = PgxdAsyncEngine(
            graph,
            ClusterConfig(num_machines=4, seed=0, trace=True,
                          trace_max_events=50),
        )
        result = engine.query(QUERY)
        assert result.trace.dropped > 0
        assert "WARNING: trace truncated" in result.explain_analyze()
        assert "WARNING: trace truncated" in result.trace.profile().summary()

    def test_no_warning_when_nothing_dropped(self):
        graph = uniform_random_graph(60, 240, seed=0)
        engine = PgxdAsyncEngine(
            graph, ClusterConfig(num_machines=2, trace=True)
        )
        result = engine.query(QUERY)
        assert result.trace.dropped == 0
        assert "WARNING" not in result.explain_analyze()
        assert "WARNING" not in result.trace.profile().summary()
