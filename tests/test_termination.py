"""Unit tests for the incremental termination protocol (paper §3.3)."""

from repro.runtime.termination import TerminationTracker


def make(num_stages=3, num_machines=3, machine_id=0):
    return TerminationTracker(num_stages, num_machines, machine_id)


class TestStageZero:
    def test_needs_bootstrap(self):
        tracker = make()
        assert not tracker.newly_completable(0, False, 0, True)
        assert tracker.newly_completable(0, True, 0, True)

    def test_needs_drained_load(self):
        tracker = make()
        assert not tracker.newly_completable(0, True, 2, True)

    def test_needs_flushed_outbuf(self):
        tracker = make()
        assert not tracker.newly_completable(0, True, 0, False)

    def test_never_completes_twice(self):
        tracker = make()
        tracker.mark_sent(0)
        assert not tracker.newly_completable(0, True, 0, True)


class TestLaterStages:
    def test_blocked_on_predecessor(self):
        tracker = make(num_machines=2)
        assert not tracker.newly_completable(1, True, 0, True)
        tracker.mark_sent(0)          # our own COMPLETED(0)
        assert not tracker.newly_completable(1, True, 0, True)
        tracker.on_completed(0, 1)    # the peer's COMPLETED(0)
        assert tracker.newly_completable(1, True, 0, True)

    def test_cascade(self):
        tracker = make(num_stages=3, num_machines=1)
        for stage in range(3):
            assert tracker.newly_completable(stage, True, 0, True)
            tracker.mark_sent(stage)
        assert tracker.all_complete()

    def test_incremental_wavefront(self):
        """Stages complete strictly in order, machine by machine."""
        tracker = make(num_stages=2, num_machines=3)
        tracker.mark_sent(0)
        tracker.on_completed(0, 1)
        # Machine 2 still missing: stage 1 must wait.
        assert not tracker.newly_completable(1, True, 0, True)
        tracker.on_completed(0, 2)
        assert tracker.newly_completable(1, True, 0, True)


class TestGlobalCompletion:
    def test_all_complete_needs_every_machine_every_stage(self):
        tracker = make(num_stages=2, num_machines=2)
        tracker.mark_sent(0)
        tracker.mark_sent(1)
        assert not tracker.all_complete()
        tracker.on_completed(0, 1)
        tracker.on_completed(1, 1)
        assert tracker.all_complete()

    def test_stage_globally_complete(self):
        tracker = make(num_stages=1, num_machines=2)
        tracker.on_completed(0, 1)
        assert not tracker.stage_globally_complete(0)
        tracker.mark_sent(0)
        assert tracker.stage_globally_complete(0)
