"""Unit tests for the incremental termination protocol (paper §3.3)."""

import itertools
import random

from repro.runtime.termination import TerminationTracker


def make(num_stages=3, num_machines=3, machine_id=0):
    return TerminationTracker(num_stages, num_machines, machine_id)


class TestStageZero:
    def test_needs_bootstrap(self):
        tracker = make()
        assert not tracker.newly_completable(0, False, 0, True)
        assert tracker.newly_completable(0, True, 0, True)

    def test_needs_drained_load(self):
        tracker = make()
        assert not tracker.newly_completable(0, True, 2, True)

    def test_needs_flushed_outbuf(self):
        tracker = make()
        assert not tracker.newly_completable(0, True, 0, False)

    def test_never_completes_twice(self):
        tracker = make()
        tracker.mark_sent(0)
        assert not tracker.newly_completable(0, True, 0, True)


class TestLaterStages:
    def test_blocked_on_predecessor(self):
        tracker = make(num_machines=2)
        assert not tracker.newly_completable(1, True, 0, True)
        tracker.mark_sent(0)          # our own COMPLETED(0)
        assert not tracker.newly_completable(1, True, 0, True)
        tracker.on_completed(0, 1)    # the peer's COMPLETED(0)
        assert tracker.newly_completable(1, True, 0, True)

    def test_cascade(self):
        tracker = make(num_stages=3, num_machines=1)
        for stage in range(3):
            assert tracker.newly_completable(stage, True, 0, True)
            tracker.mark_sent(stage)
        assert tracker.all_complete()

    def test_incremental_wavefront(self):
        """Stages complete strictly in order, machine by machine."""
        tracker = make(num_stages=2, num_machines=3)
        tracker.mark_sent(0)
        tracker.on_completed(0, 1)
        # Machine 2 still missing: stage 1 must wait.
        assert not tracker.newly_completable(1, True, 0, True)
        tracker.on_completed(0, 2)
        assert tracker.newly_completable(1, True, 0, True)


class TestGlobalCompletion:
    def test_all_complete_needs_every_machine_every_stage(self):
        tracker = make(num_stages=2, num_machines=2)
        tracker.mark_sent(0)
        tracker.mark_sent(1)
        assert not tracker.all_complete()
        tracker.on_completed(0, 1)
        tracker.on_completed(1, 1)
        assert tracker.all_complete()

    def test_stage_globally_complete(self):
        tracker = make(num_stages=1, num_machines=2)
        tracker.on_completed(0, 1)
        assert not tracker.stage_globally_complete(0)
        tracker.mark_sent(0)
        assert tracker.stage_globally_complete(0)


class TestOrderInsensitivity:
    """Property-style checks: the protocol's conclusions depend only on
    the *set* of COMPLETED messages seen, never their arrival order —
    the invariant the reliability layer exists to make safe to assume."""

    def test_all_permutations_reach_the_same_verdict(self):
        events = [(stage, peer) for stage in range(2) for peer in (1, 2)]
        verdicts = set()
        for order in itertools.permutations(events):
            tracker = make(num_stages=2, num_machines=3)
            tracker.mark_sent(0)
            tracker.mark_sent(1)
            for stage, peer in order:
                tracker.on_completed(stage, peer)
            verdicts.add((
                tracker.all_complete(),
                tracker.stage_globally_complete(0),
                tracker.stage_globally_complete(1),
            ))
        assert verdicts == {(True, True, True)}

    def test_completable_prefix_is_order_insensitive(self):
        """After any arrival order of the same COMPLETED set, the stages
        newly_completable reports as unblocked are identical."""
        events = [(0, 1), (0, 2), (1, 1)]
        outcomes = set()
        for order in itertools.permutations(events):
            tracker = make(num_stages=3, num_machines=3)
            tracker.mark_sent(0)
            for stage, peer in order:
                tracker.on_completed(stage, peer)
            outcomes.add(tuple(
                tracker.newly_completable(stage, True, 0, True)
                for stage in range(1, 3)
            ))
        # Stage 1 unblocked (stage 0 done everywhere); stage 2 is not
        # (machine 2's COMPLETED(1) never arrived).
        assert outcomes == {(True, False)}

    def test_random_interleavings_agree(self):
        rng = random.Random(7)
        stages, machines = 3, 4
        events = [(stage, peer)
                  for stage in range(stages) for peer in range(1, machines)]
        reference = None
        for _trial in range(50):
            rng.shuffle(events)
            tracker = make(num_stages=stages, num_machines=machines)
            for stage in range(stages):
                tracker.mark_sent(stage)
            for stage, peer in events:
                tracker.on_completed(stage, peer)
            snapshot = (
                tracker.all_complete(),
                tuple(tracker.stage_globally_complete(stage)
                      for stage in range(stages)),
            )
            if reference is None:
                reference = snapshot
            assert snapshot == reference
        assert reference == (True, (True, True, True))


class TestOutboxInvariant:
    """A stage never completes while its outbox still holds contexts:
    COMPLETED must happen-after every context the stage emitted."""

    def test_never_completable_with_nonempty_outbox(self):
        for num_stages in (1, 2, 3):
            for num_machines in (1, 2, 3):
                tracker = make(num_stages=num_stages,
                               num_machines=num_machines)
                # Even with every other condition satisfied...
                for stage in range(num_stages):
                    for peer in range(1, num_machines):
                        tracker.on_completed(stage, peer)
                for stage in range(num_stages):
                    assert not tracker.newly_completable(
                        stage, True, 0, False   # ...outbox not empty
                    )

    def test_progress_summary_reflects_peers(self):
        tracker = make(num_stages=2, num_machines=3)
        assert tracker.progress_summary() == "stages complete: 0/3, 0/3"
        tracker.mark_sent(0)
        tracker.on_completed(0, 1)
        assert tracker.progress_summary() == "stages complete: 2/3, 0/3"
