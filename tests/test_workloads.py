"""Tests for the BSBM-like and random-pattern workload generators."""

import pytest

from repro import ClusterConfig, run_query
from repro.baselines import SharedMemoryEngine
from repro.pgql import parse_and_validate
from repro.workloads import (
    generate_bsbm,
    query5,
    query5_parts,
    random_pattern_query,
    random_query_suite,
    split_heavy_fast,
)


@pytest.fixture(scope="module")
def bsbm():
    return generate_bsbm(num_products=100, seed=3)


class TestBsbmGenerator:
    def test_deterministic(self):
        first = generate_bsbm(50, seed=1).graph
        second = generate_bsbm(50, seed=1).graph
        assert first.num_vertices == second.num_vertices
        assert first.num_edges == second.num_edges

    def test_schema_shape(self, bsbm):
        graph = bsbm.graph
        assert len(bsbm.product_ids) == 100
        for product in bsbm.product_ids[:5]:
            assert graph.vertex_label_name(product) == "product"
            assert 0 <= graph.vertex_prop("num1", product) < 2000
        for offer in bsbm.offer_ids[:5]:
            assert graph.vertex_label_name(offer) == "offer"
            assert graph.vertex_prop("price", offer) > 0

    def test_every_product_has_producer_and_features(self, bsbm):
        graph = bsbm.graph
        producer_label = graph.labels.lookup("producer")
        feature_label = graph.labels.lookup("feature")
        for product in bsbm.product_ids:
            labels = [
                graph.edge_label(int(eid))
                for eid in graph.out_edges(product)[1]
            ]
            assert producer_label in labels
            assert feature_label in labels

    def test_feature_popularity_is_skewed(self):
        # A wider feature pool makes the quadratic skew visible.
        bsbm = generate_bsbm(num_products=400, seed=3, num_features=100)
        graph = bsbm.graph
        degrees = sorted(
            (graph.in_degree(f) for f in bsbm.feature_ids), reverse=True
        )
        assert degrees[0] > 3 * max(1, degrees[len(degrees) // 2])


class TestQuery5:
    def test_query_parses(self, bsbm):
        query = query5(bsbm.product_ids[0])
        parsed = parse_and_validate(query)
        assert parsed.vertex_vars() == ["p", "f", "p2"]

    def test_parts_are_distinct_and_deterministic(self, bsbm):
        parts = query5_parts(bsbm, num_parts=10, seed=5)
        assert len(parts) == 10
        assert parts == query5_parts(bsbm, num_parts=10, seed=5)

    def test_parts_have_spread_workloads(self, bsbm):
        parts = query5_parts(bsbm, num_parts=10, seed=5)
        engine = SharedMemoryEngine(bsbm.graph)
        works = [engine.query(part).metrics.total_ops for part in parts]
        assert max(works) > 2 * min(works)

    def test_semantics_similar_products(self, bsbm):
        """Verify one part against a direct computation of 'similarity'."""
        graph = bsbm.graph
        origin = bsbm.product_ids[0]
        result = run_query(
            graph, query5(origin), ClusterConfig(num_machines=2)
        )
        feature_label = graph.labels.lookup("feature")
        origin_features = {
            int(t)
            for t, e in zip(*graph.out_edges(origin))
            if graph.edge_label(int(e)) == feature_label
        }
        expected = set()
        for product in bsbm.product_ids:
            if product == origin:
                continue
            features = {
                int(t)
                for t, e in zip(*graph.out_edges(product))
                if graph.edge_label(int(e)) == feature_label
            }
            if not (features & origin_features):
                continue
            if abs(graph.vertex_prop("num1", product)
                   - graph.vertex_prop("num1", origin)) >= 120:
                continue
            if abs(graph.vertex_prop("num2", product)
                   - graph.vertex_prop("num2", origin)) >= 170:
                continue
            expected.add(product)
        assert {row[0] for row in result.rows} == expected


class TestRandomQueries:
    def test_deterministic(self):
        assert random_pattern_query(7) == random_pattern_query(7)
        assert random_query_suite(5, seed=2) == random_query_suite(5, seed=2)

    def test_edge_count(self):
        for seed in range(10):
            query = parse_and_validate(random_pattern_query(seed,
                                                            num_edges=4))
            edges = sum(len(path.edges) for path in query.paths)
            assert edges == 4

    def test_queries_are_connected(self):
        """No cartesian restarts: every query is one connected pattern."""
        from repro.plan import build_logical_plan, CartesianRootMatch

        for seed in range(20):
            query = parse_and_validate(random_pattern_query(seed))
            plan = build_logical_plan(query)
            assert not any(
                isinstance(op, CartesianRootMatch) for op in plan.ops
            )

    def test_queries_run(self, random_graph):
        for query in random_query_suite(3, seed=4):
            result = run_query(
                random_graph, query, ClusterConfig(num_machines=2)
            )
            reference = SharedMemoryEngine(random_graph).query(query)
            assert sorted(result.rows) == sorted(reference.rows)


class TestSeededWorkload:
    def test_derives_everything_from_config_seed(self):
        from repro.workloads import seeded_workload

        config = ClusterConfig(num_machines=2, seed=13)
        graph_a, queries_a = seeded_workload(config, num_vertices=50,
                                             num_edges=200, num_queries=3)
        graph_b, queries_b = seeded_workload(config, num_vertices=50,
                                             num_edges=200, num_queries=3)
        assert queries_a == queries_b
        assert graph_a.num_edges == graph_b.num_edges
        for vertex in graph_a.vertices():
            assert list(graph_a.out_neighbors(vertex)) == \
                list(graph_b.out_neighbors(vertex))

    def test_different_seeds_differ(self):
        from repro.workloads import seeded_workload

        _graph, queries_a = seeded_workload(ClusterConfig(seed=1),
                                            num_vertices=50, num_edges=200)
        _graph, queries_b = seeded_workload(ClusterConfig(seed=2),
                                            num_vertices=50, num_edges=200)
        assert queries_a != queries_b


class TestHeavyFastSplit:
    def test_split_by_geometric_middle(self):
        heavy, fast = split_heavy_fast({"a": 1, "b": 10, "c": 10_000})
        assert "c" in heavy
        assert "a" in fast

    def test_empty(self):
        assert split_heavy_fast({}) == ([], [])

    def test_explicit_threshold(self):
        heavy, fast = split_heavy_fast({"a": 5, "b": 50}, threshold=10)
        assert heavy == ["b"]
        assert fast == ["a"]


class TestSkewedWorkload:
    def test_deterministic(self):
        from repro.workloads import skewed_workload

        graph_a, queries_a = skewed_workload(ClusterConfig(seed=3))
        graph_b, queries_b = skewed_workload(ClusterConfig(seed=3))
        assert queries_a == queries_b
        assert graph_a.num_edges == graph_b.num_edges
        for vertex in graph_a.vertices():
            assert list(graph_a.out_neighbors(vertex)) == \
                list(graph_b.out_neighbors(vertex))

    def test_degree_skew_is_real(self):
        from repro.workloads import skewed_music_graph

        stats = skewed_music_graph(seed=0).statistics()
        bands = stats.in_degrees["band"]
        # The hub band has far more fans than the mean band.
        assert bands.max > 3 * bands.mean
        # Curators fan out much wider than ordinary persons.
        assert stats.out_degrees["curator"].mean > \
            4 * stats.out_degrees["person"].mean

    def test_queries_are_naive_bad(self):
        from repro.workloads import skewed_query_suite

        queries = skewed_query_suite(seed=0)
        assert len(queries) == 4
        # Text order anchors every chain at the fat person end while the
        # selective equality filter sits on a later variable.
        assert queries[0].index("(p:person)") < queries[0].index("b.name")
        assert "<-[:likes]-" in queries[3]  # the CN intersection
