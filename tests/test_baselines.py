"""Unit/integration tests for the three baseline engines."""

import pytest

from repro import ClusterConfig, PlannerOptions, run_query
from repro.baselines import BftEngine, JoinEngine, SharedMemoryEngine
from repro.errors import PlanError
from repro.plan import MatchSemantics


class TestSharedMemoryEngine:
    def test_matches_distributed(self, random_graph):
        query = "SELECT a, b WHERE (a)-[]->(b), a.value > b.value"
        single = SharedMemoryEngine(random_graph).query(query)
        distributed = run_query(
            random_graph, query, ClusterConfig(num_machines=3)
        )
        assert sorted(single.rows) == sorted(distributed.rows)

    def test_counts_ops(self, random_graph):
        result = SharedMemoryEngine(random_graph).query(
            "SELECT a WHERE (a)-[]->(b)"
        )
        assert result.metrics.total_ops > random_graph.num_vertices
        assert result.metrics.ticks >= 1

    def test_supports_all_semantics(self, random_graph):
        for semantics in MatchSemantics:
            result = SharedMemoryEngine(random_graph).query(
                "SELECT a, b, c WHERE (a)-[]->(b)-[]->(c)",
                PlannerOptions(semantics=semantics),
            )
            assert result.metrics.num_results == len(result.rows) or \
                result.metrics.num_results >= len(result.rows)

    def test_supports_common_neighbor_plans(self, random_graph):
        query = "SELECT a, c, b WHERE (a)-[]->(c)<-[]-(b)"
        plain = SharedMemoryEngine(random_graph).query(query)
        optimized = SharedMemoryEngine(random_graph).query(
            query, PlannerOptions(use_common_neighbors=True)
        )
        assert sorted(plain.rows) == sorted(optimized.rows)

    def test_single_vertex_origin(self, social_graph):
        result = SharedMemoryEngine(social_graph).query(
            "SELECT v, b WHERE (v WITH id() = 0)-[]->(b)"
        )
        assert sorted(result.rows) == [(0, 1), (0, 4)]

    def test_aggregation(self, social_graph):
        result = SharedMemoryEngine(social_graph).query(
            "SELECT COUNT(*) WHERE (a:person)"
        )
        assert result.rows == [(4,)]


class TestBftEngine:
    def test_matches_reference(self, random_graph):
        query = "SELECT a, b, c WHERE (a)-[]->(b)-[]->(c), a.type = 0"
        reference = SharedMemoryEngine(random_graph).query(query)
        bft = BftEngine(random_graph, ClusterConfig(num_machines=4))
        result = bft.query(query)
        assert sorted(result.rows) == sorted(reference.rows)

    def test_intermediate_state_explosion(self, random_graph):
        """The §1 claim: BFT materializes far more state than async DFT."""
        query = "SELECT a, b, c WHERE (a)-[]->(b)-[]->(c)"
        config = ClusterConfig(num_machines=4)
        bft = BftEngine(random_graph, config).query(query)
        dft = run_query(random_graph, query, config)
        assert bft.metrics.peak_buffered_contexts > \
            5 * dft.metrics.peak_buffered_contexts

    def test_single_vertex_origin(self, social_graph):
        bft = BftEngine(social_graph, ClusterConfig(num_machines=2))
        result = bft.query("SELECT v, b WHERE (v WITH id() = 0)-[]->(b)")
        assert sorted(result.rows) == [(0, 1), (0, 4)]

    def test_rejects_common_neighbor_plans(self, random_graph):
        bft = BftEngine(random_graph, ClusterConfig(num_machines=2))
        with pytest.raises(PlanError):
            bft.query(
                "SELECT a WHERE (a)-[]->(c)<-[]-(b)",
                PlannerOptions(use_common_neighbors=True),
            )

    def test_barrier_cost_scales_with_stages(self, random_graph):
        config = ClusterConfig(num_machines=4)
        short = BftEngine(random_graph, config).query(
            "SELECT a WHERE (a WITH type = 3)"
        )
        unmatched = BftEngine(random_graph, config).query(
            "SELECT a, b, c WHERE (a WITH value > 999999)-[]->(b)-[]->(c)"
        )
        # Even with no matches, every superstep pays its barrier.
        assert unmatched.metrics.ticks > short.metrics.ticks


class TestJoinEngine:
    def test_matches_reference(self, random_graph):
        query = "SELECT a, b WHERE (a)-[]->(b), a.type = b.type"
        reference = SharedMemoryEngine(random_graph).query(query)
        result = JoinEngine(random_graph).query(query)
        assert sorted(result.rows) == sorted(reference.rows)

    def test_peak_rows_tracks_intermediates(self, random_graph):
        result = JoinEngine(random_graph).query(
            "SELECT a, b, c WHERE (a)-[]->(b)-[]->(c)"
        )
        assert result.metrics.peak_buffered_contexts >= len(result.rows)

    def test_edge_check_join(self, social_graph):
        result = JoinEngine(social_graph).query(
            "SELECT a, b WHERE (a)-[:friend]->(b), (b)-[:friend]->(a)"
        )
        assert result.rows == []

    def test_edge_labels(self, social_graph):
        result = JoinEngine(social_graph).query(
            "SELECT a, i WHERE (a)-[:bought]->(i)"
        )
        assert len(result.rows) == 3

    def test_unknown_label_matches_nothing(self, social_graph):
        result = JoinEngine(social_graph).query(
            "SELECT a, b WHERE (a)-[:ghost]->(b)"
        )
        assert result.rows == []

    def test_rejects_aggregates(self, social_graph):
        with pytest.raises(PlanError):
            JoinEngine(social_graph).query("SELECT COUNT(*) WHERE (a)")

    def test_rejects_isomorphism(self, social_graph):
        with pytest.raises(PlanError):
            JoinEngine(social_graph).query(
                "SELECT a WHERE (a)-[]->(b)",
                PlannerOptions(semantics=MatchSemantics.ISOMORPHISM),
            )
