"""White-box tests of runtime internals: machine, messages, hops, worker."""

import pytest

from repro import ClusterConfig, PlannerOptions, run_query
from repro.cluster.simulator import Simulator
from repro.errors import RuntimeFault
from repro.graph import DistributedGraph, GraphBuilder, uniform_random_graph
from repro.plan import plan_query
from repro.runtime.hops import AllScanItem, CNItem
from repro.runtime.machine import QueryMachine, _item_weight
from repro.runtime.messages import Ack, Completed, WorkMessage
from repro.runtime.worker import Computation, ScanFrame, StageFrame


def make_machine(graph=None, machines=2, **config_kwargs):
    graph = graph or uniform_random_graph(20, 60, seed=0)
    config = ClusterConfig(num_machines=machines, **config_kwargs)
    plan = plan_query("SELECT a, b WHERE (a)-[]->(b)", graph)
    dist = DistributedGraph.create(graph, machines)
    simulator = Simulator(config)
    built = [
        QueryMachine(plan, dist, m, simulator.api_for(m), config)
        for m in range(machines)
    ]
    simulator.attach(built)
    return simulator, built


class TestItemWeight:
    def test_plain_context(self):
        assert _item_weight((1, 2, 3)) == 1

    def test_cn_item(self):
        item = CNItem((1,), ((5, ()), (6, ())))
        assert _item_weight(item) == 3


class TestMessageHandling:
    def test_work_message_enters_inbox_and_load(self):
        _, (m0, m1) = make_machine()
        message = WorkMessage(1, ((0, 1), (0, 2)))
        m0.on_message(1, message)
        assert m0.stage_load[1] == 2
        assert m0.pop_message(1) is message
        assert message.src == 1

    def test_ack_frees_flow_window(self):
        _, (m0, _m1) = make_machine()
        m0.flow.on_send(1, 1)
        m0.on_message(1, Ack(1, 1, seqs=(42,)))
        assert m0.flow.inflight(1, 1) == 0
        assert m0.is_acked(42)

    def test_completed_recorded(self):
        _, (m0, _m1) = make_machine()
        m0.on_message(1, Completed(0))
        assert m0.termination.stage_globally_complete(0) is False
        m0.termination.mark_sent(0)
        assert m0.termination.stage_globally_complete(0) is True

    def test_unknown_payload_rejected(self):
        _, (m0, _m1) = make_machine()
        with pytest.raises(RuntimeFault):
            m0.on_message(1, object())


class TestBulkBuffering:
    def test_flush_on_full_buffer(self):
        simulator, (m0, _m1) = make_machine(bulk_message_size=2)
        comp = Computation(0)
        assert m0.route(comp, 1, 1, (0, 5)) is True
        assert len(simulator.network) == 0  # buffered, not yet sent
        assert m0.route(comp, 1, 1, (0, 6)) is True
        assert len(simulator.network) == 1  # bulk flushed at 2

    def test_flow_control_blocks_route(self):
        simulator, (m0, _m1) = make_machine(
            bulk_message_size=1, flow_control_window=1
        )
        comp = Computation(0)
        assert m0.route(comp, 1, 1, (0, 5)) is True   # sent (window used)
        assert m0.route(comp, 1, 1, (0, 6)) is True   # buffered
        assert m0.route(comp, 1, 1, (0, 7)) is False  # buffer full + no window
        assert m0.last_refused == (1, 1)
        assert m0.metrics.flow_control_blocks == 1

    def test_local_route_never_blocks(self):
        _, (m0, _m1) = make_machine(
            bulk_message_size=1, flow_control_window=1
        )
        comp = Computation(0)
        for value in range(50):
            assert m0.route(comp, 1, 0, (0, value)) is True
        # Work-shared up to the cap, the rest pushed depth-first.
        assert len(comp.stack) > 0
        assert m0.pop_local_item(1) is not None

    def test_idle_progress_flushes_partials(self):
        simulator, (m0, _m1) = make_machine(bulk_message_size=8)
        comp = Computation(0)
        m0.route(comp, 1, 1, (0, 5))
        assert len(simulator.network) == 0
        ops = m0.idle_progress()
        assert ops > 0
        assert len(simulator.network) == 1


class TestFrames:
    def test_scan_frame_fields(self):
        frame = ScanFrame(0, (), [1, 2, 3])
        assert frame.pos == 0
        assert frame.stage_index == 0

    def test_stage_frame_defaults(self):
        frame = StageFrame(1, (4,), 4)
        assert frame.phase == 0
        assert frame.cursor is None
        assert frame.cn_payload is None

    def test_all_scan_item_wraps_context(self):
        item = AllScanItem((1, 2))
        assert item.ctx == (1, 2)


class TestComputation:
    def test_from_message(self):
        message = WorkMessage(2, ((0, 1),))
        comp = Computation.from_message(message)
        assert comp.root_stage == 2
        assert comp.has_work()

    def test_bootstrap(self):
        comp = Computation.bootstrap(ScanFrame(0, (), [0]))
        assert comp.root_stage == 0
        assert comp.has_work()
        comp.stack.clear()
        assert not comp.has_work()


class TestBootstrapChunks:
    def test_single_vertex_only_on_owner(self):
        _, machines = make_machine()
        graph = uniform_random_graph(20, 60, seed=0)
        plan = plan_query("SELECT v WHERE (v WITH id() = 3)-[]->(b)", graph)
        config = ClusterConfig(num_machines=2)
        dist = DistributedGraph.create(graph, 2)
        simulator = Simulator(config)
        owners = [
            QueryMachine(plan, dist, m, simulator.api_for(m), config)
            for m in range(2)
        ]
        owner_id = dist.owner(3)
        assert not owners[owner_id].bootstrap_done
        assert owners[1 - owner_id].bootstrap_done

    def test_out_of_range_origin_everywhere_done(self):
        graph = uniform_random_graph(20, 60, seed=0)
        plan = plan_query(
            "SELECT v WHERE (v WITH id() = 999)-[]->(b)", graph
        )
        config = ClusterConfig(num_machines=2)
        dist = DistributedGraph.create(graph, 2)
        simulator = Simulator(config)
        machines = [
            QueryMachine(plan, dist, m, simulator.api_for(m), config)
            for m in range(2)
        ]
        assert all(machine.bootstrap_done for machine in machines)


class TestRemoteDisciplineEndToEnd:
    def test_debug_checks_catch_misrouted_frames(self):
        """A frame forced onto the wrong machine must be detected."""
        graph = uniform_random_graph(20, 60, seed=0)
        config = ClusterConfig(num_machines=2)
        plan = plan_query("SELECT a, b WHERE (a)-[]->(b)", graph)
        dist = DistributedGraph.create(graph, 2)
        simulator = Simulator(config)
        machines = [
            QueryMachine(plan, dist, m, simulator.api_for(m), config,
                         debug_checks=True)
            for m in range(2)
        ]
        simulator.attach(machines)
        remote_vertex = int(dist.local(1).local_vertices()[0])
        # Hand machine 0 a context whose stage-1 vertex it does not own.
        bogus = WorkMessage(1, ((0, remote_vertex),))
        machines[0].on_message(1, bogus)
        with pytest.raises(RuntimeFault):
            simulator.run()


class TestStrictSemanticsEndToEnd:
    def test_isomorphism_excludes_repeated_vertices(self):
        builder = GraphBuilder()
        a = builder.add_vertex()
        b = builder.add_vertex()
        builder.add_edge(a, b)
        builder.add_edge(b, a)
        graph = builder.build()
        from repro.plan import MatchSemantics

        homo = run_query(
            graph, "SELECT x, y, z WHERE (x)-[]->(y)-[]->(z)",
            ClusterConfig(num_machines=2),
        )
        iso = run_query(
            graph, "SELECT x, y, z WHERE (x)-[]->(y)-[]->(z)",
            ClusterConfig(num_machines=2),
            options=PlannerOptions(semantics=MatchSemantics.ISOMORPHISM),
        )
        # Homomorphism allows x = z (a->b->a); isomorphism forbids it.
        assert len(homo.rows) == 2
        assert len(iso.rows) == 0
